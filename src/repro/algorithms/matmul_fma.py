"""Fused Multiply-Add matrix multiplication (the COMPSs sample).

Used for the generalizability experiment (§5.5.1, Figure 12): instead of
materialising partial products and reducing them with ``add_func``, each
output block is updated in place by a chain of ``fma_func`` tasks
``C[i][j] += A[i][q] @ B[q][j]``.  The per-task cost profile matches
``matmul_func`` (O(N^3) compute over three resident blocks), so the user
code trends of Figure 8 repeat — which is exactly the paper's point.
"""

from __future__ import annotations

import numpy as np

from repro.data import Blocking, DatasetSpec, GridSpec
from repro.perfmodel import TaskCost
from repro.runtime import DataRef, Runtime, task
from repro.arrays import DistributedArray

_ELEM = 8


@task(returns=1, name="fma_func")
def fma_func(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Return ``c + a @ b`` (functional update of the accumulator block)."""
    return c + a @ b


@task(returns=1, name="zero_block")
def zero_block(like: np.ndarray) -> np.ndarray:
    """An all-zero accumulator block shaped like the input."""
    return np.zeros_like(like)


def fma_cost(m: int, p: int, n: int) -> TaskCost:
    """Cost of one ``fma_func``: the multiply plus the fused accumulate.

    Reads three blocks (accumulator and both operands) and writes one, so
    device memory holds 3-4 block-sized buffers like dislib's Matmul.
    """
    flops = 2.0 * m * p * n + m * n
    in_bytes = _ELEM * (m * n + m * p + p * n)
    out_bytes = _ELEM * m * n
    touched = in_bytes + out_bytes
    return TaskCost(
        serial_flops=0.0,
        parallel_flops=flops,
        parallel_items=float(m * n),
        arithmetic_intensity=flops / touched,
        input_bytes=in_bytes,
        output_bytes=out_bytes,
        host_device_bytes=in_bytes + out_bytes,
        gpu_memory_bytes=in_bytes + out_bytes,
        host_memory_bytes=2 * (in_bytes + out_bytes),
    )


def zero_cost(m: int, n: int) -> TaskCost:
    """Cost of materialising one zero accumulator block (serial, cheap)."""
    out_bytes = _ELEM * m * n
    return TaskCost(
        serial_flops=float(m * n),
        parallel_flops=0.0,
        parallel_items=0.0,
        arithmetic_intensity=0.0,
        input_bytes=0,
        output_bytes=out_bytes,
        host_device_bytes=0,
        gpu_memory_bytes=0,
        host_memory_bytes=2 * out_bytes,
    )


class MatmulFmaWorkflow:
    """Builds the FMA Matmul workflow for one (dataset, grid) pair."""

    name = "matmul_fma"
    #: Task types counted by the parallel-task-time metric.
    parallel_task_types = frozenset({"fma_func"})
    #: The dominant task type used for stage-level speedups.
    primary_task_type = "fma_func"

    def __init__(self, dataset: DatasetSpec, grid: int | GridSpec) -> None:
        if isinstance(grid, int):
            grid = GridSpec(k=grid, l=grid)
        if grid.k != grid.l:
            raise ValueError("Matmul FMA uses square grids")
        self.blocking = Blocking.from_grid(dataset, grid)

    @property
    def block_mb(self) -> float:
        """Block size label used on the figures' X axes."""
        return self.blocking.block_mb

    def build(
        self, runtime: Runtime, materialize: bool = False
    ) -> tuple[DistributedArray, DistributedArray, list[list[DataRef]]]:
        """Submit all tasks; returns (A, B, C block refs)."""
        blocking = self.blocking
        m, n = blocking.block.m, blocking.block.n
        g = blocking.grid.k
        a = DistributedArray.create(runtime, blocking, name="A", materialize=materialize)
        b = DistributedArray.create(runtime, blocking, name="B", materialize=materialize)
        f_cost = fma_cost(m, n, n)
        z_cost = zero_cost(m, n)
        c_refs: list[list[DataRef]] = []
        with runtime:
            for i in range(g):
                row: list[DataRef] = []
                for j in range(g):
                    acc = zero_block(a.block(i, 0), _cost=z_cost)
                    for q in range(g):
                        acc = fma_func(acc, a.block(i, q), b.block(q, j), _cost=f_cost)
                    row.append(acc)
                c_refs.append(row)
        return a, b, c_refs

    def task_costs(self) -> dict[str, TaskCost]:
        """Per-task-type costs for analytic (single-task) experiments."""
        m, n = self.blocking.block.m, self.blocking.block.n
        return {"fma_func": fma_cost(m, n, n)}
