"""Trace records for task-processing stages.

Each task goes through the stages of the paper's Figure 4; the runtime
emits one :class:`StageRecord` per stage plus a :class:`TaskRecord`
summarising the whole task.  Times are simulated seconds for the simulated
backend and wall-clock seconds for the in-process backend.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Stage(str, enum.Enum):
    """Task-processing stages (Figure 4 of the paper).

    ``FAILURE`` and ``RETRY_WAIT`` extend the figure with the fault path
    of :mod:`repro.faults`: a zero-duration failure marker at the instant
    an attempt dies, and the master-side backoff before the task is
    re-queued.  The recovery path adds three more: ``RECOMPUTE`` marks a
    committed task being resurrected because its output blocks were lost
    with a node, ``CHECKPOINT_WRITE`` is the modeled cost of persisting a
    task's outputs to shared storage under a
    :class:`~repro.faults.CheckpointPolicy`, and ``SPECULATIVE`` marks
    the launch of a speculative backup attempt for a straggling task.
    """

    SCHEDULING = "scheduling"
    DESERIALIZATION = "deserialization"
    SERIAL_FRACTION = "serial_fraction"
    PARALLEL_FRACTION = "parallel_fraction"
    CPU_GPU_COMM = "cpu_gpu_comm"
    SERIALIZATION = "serialization"
    FAILURE = "failure"
    RETRY_WAIT = "retry_wait"
    RECOMPUTE = "recompute"
    CHECKPOINT_WRITE = "checkpoint_write"
    SPECULATIVE = "speculative"


@dataclass(frozen=True, slots=True)
class StageRecord:
    """One stage of one task attempt."""

    task_id: int
    task_type: str
    stage: Stage
    start: float
    end: float
    node: int
    core: int
    level: int
    used_gpu: bool
    #: 1-based attempt number the stage belongs to (1 = first try).
    attempt: int = 1

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"stage {self.stage} of task {self.task_id} ends before it starts"
            )

    @property
    def duration(self) -> float:
        """Stage duration in seconds."""
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class TaskRecord:
    """Whole-task summary (the successful attempt)."""

    task_id: int
    task_type: str
    start: float
    end: float
    node: int
    core: int
    level: int
    used_gpu: bool
    #: 1-based number of the attempt that succeeded (1 = no retries).
    attempt: int = 1

    @property
    def duration(self) -> float:
        """Task duration in seconds, scheduling included."""
        return self.end - self.start


#: Outcome label of a successful attempt; failures carry the fault kind
#: ("crash", "node_failure", "gpu_oom", "timeout") and speculative
#: attempts cancelled after losing the race carry
#: :data:`ATTEMPT_SPECULATION_CANCELLED`.
ATTEMPT_OK = "success"

#: Outcome label of a speculative attempt cancelled because a sibling
#: attempt of the same task committed first.
ATTEMPT_SPECULATION_CANCELLED = "speculation_cancelled"


@dataclass(frozen=True, slots=True)
class TaskAttempt:
    """One try of one task, successful or not.

    Attempt records are emitted only by fault-injecting executions (a
    fault-free trace carries the same information in its task records);
    ``outcome`` is :data:`ATTEMPT_OK` or the failure kind.
    """

    task_id: int
    task_type: str
    attempt: int
    start: float
    end: float
    node: int
    core: int
    level: int
    used_gpu: bool
    outcome: str

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"attempt {self.attempt} of task {self.task_id} "
                "ends before it starts"
            )
        if self.attempt < 1:
            raise ValueError("attempt numbers are 1-based")

    @property
    def ok(self) -> bool:
        """Whether the attempt completed the task."""
        return self.outcome == ATTEMPT_OK

    @property
    def duration(self) -> float:
        """Attempt duration in seconds."""
        return self.end - self.start


@dataclass
class Trace:
    """An append-only collection of stage, task, and attempt records."""

    stages: list[StageRecord] = field(default_factory=list)
    tasks: list[TaskRecord] = field(default_factory=list)
    attempts: list[TaskAttempt] = field(default_factory=list)

    def add_stage(self, record: StageRecord) -> None:
        """Append a stage record."""
        self.stages.append(record)

    def add_task(self, record: TaskRecord) -> None:
        """Append a whole-task record."""
        self.tasks.append(record)

    def add_attempt(self, record: TaskAttempt) -> None:
        """Append a task-attempt record."""
        self.attempts.append(record)

    @property
    def makespan(self) -> float:
        """Wall time from the first task start to the last task end.

        Counts successful tasks only; :attr:`recovered_span` additionally
        covers failed attempts and retry waits.
        """
        if not self.tasks:
            return 0.0
        return max(t.end for t in self.tasks) - min(t.start for t in self.tasks)

    @property
    def recovered_span(self) -> float:
        """Wall time including failed attempts and retry backoff.

        Equals :attr:`makespan` for fault-free traces; for a run that
        failed permanently (no successful record of some task) this is
        the only span covering the work actually performed.
        """
        points = [(t.start, t.end) for t in self.tasks]
        points += [(a.start, a.end) for a in self.attempts]
        points += [
            (r.start, r.end)
            for r in self.stages
            if r.stage in (Stage.FAILURE, Stage.RETRY_WAIT)
        ]
        if not points:
            return 0.0
        return max(end for _, end in points) - min(start for start, _ in points)

    def occupancy(self) -> list["TaskAttempt"] | list["TaskRecord"]:
        """The records that describe core occupancy over time.

        Fault-injecting executions record every try as a
        :class:`TaskAttempt`; fault-free executions carry the same
        information in their task records.  Resource-accounting passes
        (per-core overlap, RAM/GPU conservation) should sweep these
        records rather than picking one of the two lists themselves.
        """
        if self.attempts:
            return self.attempts
        return self.tasks

    def attempts_of(self, task_id: int) -> list["TaskAttempt"]:
        """All attempts of one task, ordered by attempt number."""
        return sorted(
            (a for a in self.attempts if a.task_id == task_id),
            key=lambda a: a.attempt,
        )

    def attempt_counts(self) -> dict[int, int]:
        """Tries per task id.

        Falls back to the task records (one attempt each) when the trace
        carries no attempt records — i.e. for fault-free executions.
        """
        if not self.attempts:
            return {t.task_id: 1 for t in self.tasks}
        counts: dict[int, int] = {}
        for attempt in self.attempts:
            counts[attempt.task_id] = max(
                counts.get(attempt.task_id, 0), attempt.attempt
            )
        return counts

    def stages_of(self, stage: Stage) -> list[StageRecord]:
        """All records of one stage kind."""
        return [r for r in self.stages if r.stage is stage]

    def stages_of_task_type(self, task_type: str) -> list[StageRecord]:
        """All stage records belonging to one task type."""
        return [r for r in self.stages if r.task_type == task_type]

    def task_types(self) -> list[str]:
        """Distinct task types in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.tasks:
            seen.setdefault(record.task_type, None)
        return list(seen)

    def levels(self) -> list[int]:
        """Distinct DAG levels present, ascending."""
        return sorted({t.level for t in self.tasks})
