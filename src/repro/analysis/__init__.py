"""Pre-execution workflow analysis: the ``repro lint`` static analyzer.

The paper's headline failures are all predictable before a single task
runs: Figure 9a's "CPU GPU OOM" (a distance matrix larger than node RAM),
the launch-overhead regime of observation O1, and the transfer-bound
placements of O4 are functions of the DAG, the declared
:class:`~repro.perfmodel.TaskCost` demands, and the cluster spec alone.
This package checks all of them statically and reports structured
:class:`Diagnostic` records with stable ``WFnnn`` codes (documented in
``docs/linting.md``).

Three entry points:

* :func:`analyze` / :func:`analyze_runtime` — library API;
* ``Runtime.run(validate=True)`` — refuse dispatch when errors are found,
  raising :class:`WorkflowValidationError`;
* ``repro lint`` — the CLI front-end (text or JSON output, non-zero exit
  on errors).
"""

from repro.analysis.analyzer import analyze, analyze_runtime, collect_ref_ids
from repro.analysis.baseline import filter_new, load_baseline, save_baseline
from repro.analysis.devlint import LintFinding, lint_paths, lint_source
from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    WorkflowValidationError,
)
from repro.analysis.registry import (
    KIND_DEVLINT,
    KIND_WORKFLOW,
    RuleSpec,
    known_codes,
    register,
    register_devlint,
    rule_table,
    spec_for,
    specs,
)
from repro.analysis.rules import AnalysisOptions, RuleContext, all_rules
from repro.analysis.sanitizer import (
    SanitizerReport,
    TraceSanitizerError,
    Violation,
    sanitize_result,
)

__all__ = [
    "AnalysisOptions",
    "AnalysisReport",
    "CODES",
    "Diagnostic",
    "KIND_DEVLINT",
    "KIND_WORKFLOW",
    "LintFinding",
    "RuleContext",
    "RuleSpec",
    "SanitizerReport",
    "Severity",
    "TraceSanitizerError",
    "Violation",
    "WorkflowValidationError",
    "all_rules",
    "analyze",
    "analyze_runtime",
    "collect_ref_ids",
    "filter_new",
    "known_codes",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register",
    "register_devlint",
    "rule_table",
    "sanitize_result",
    "save_baseline",
    "spec_for",
    "specs",
]
