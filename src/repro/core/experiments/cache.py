"""Content-addressed on-disk cache for sweep-cell results (docs/sweeps.md).

One cache entry is one JSON file named after the cell's content digest
(:func:`repro.core.experiments.engine.cell_digest`), which covers both
the canonicalized :class:`~repro.core.experiments.engine.CellSpec` and the
model-version fingerprint.  Because the fingerprint is part of the key,
entries written against an older cost model or calibration are never
*hit* — they simply become unreachable, and :meth:`SweepCache.prune`
deletes them (the engine's "evictions" stat).

Records are written with sorted keys and stable separators so a cache
directory diffs cleanly between runs, and atomically (temp file +
``os.replace``) so parallel workers and concurrent invocations never
observe a torn entry.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.core.experiments.runners import RunMetrics
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy
from repro.tracing import DataMovementMetrics, UserCodeMetrics

#: Record format version; bump when the record layout changes.  Records
#: with a foreign schema are treated as misses (and pruned as stale).
SCHEMA = "repro-sweep-cache/1"


def default_cache_dir() -> Path:
    """Where sweep results live unless ``--cache-dir`` overrides it.

    Honours ``REPRO_SWEEP_CACHE_DIR`` (used by the test suite to stay
    hermetic) and ``XDG_CACHE_HOME`` before falling back to
    ``~/.cache/repro/sweeps``.
    """
    override = os.environ.get("REPRO_SWEEP_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "sweeps"


def metrics_to_record(metrics: RunMetrics) -> dict[str, Any]:
    """Serialise one :class:`RunMetrics` into JSON-compatible data."""
    return {
        "status": metrics.status,
        "use_gpu": metrics.use_gpu,
        "storage": metrics.storage.value,
        "scheduling": metrics.scheduling.value,
        "makespan": metrics.makespan,
        "user_code": {
            task_type: {
                "task_type": uc.task_type,
                "num_tasks": uc.num_tasks,
                "serial_fraction": uc.serial_fraction,
                "parallel_fraction": uc.parallel_fraction,
                "cpu_gpu_comm": uc.cpu_gpu_comm,
            }
            for task_type, uc in sorted(metrics.user_code.items())
        },
        "movement": (
            None
            if metrics.movement is None
            else {
                "num_cores": metrics.movement.num_cores,
                "deserialization_per_core": (
                    metrics.movement.deserialization_per_core
                ),
                "serialization_per_core": metrics.movement.serialization_per_core,
            }
        ),
        "parallel_task_time": metrics.parallel_task_time,
        "dag_width": metrics.dag_width,
        "dag_height": metrics.dag_height,
        "num_tasks": metrics.num_tasks,
        "error": metrics.error,
        "trace_digest": metrics.trace_digest,
    }


def metrics_from_record(record: dict[str, Any]) -> RunMetrics:
    """Rebuild a :class:`RunMetrics` from :func:`metrics_to_record` data.

    JSON round-trips Python floats exactly (shortest-repr encoding), so
    the reconstruction is value-identical to the freshly executed object —
    the property the byte-equivalence suite locks down.
    """
    movement = record.get("movement")
    return RunMetrics(
        status=record["status"],
        use_gpu=record["use_gpu"],
        storage=StorageKind(record["storage"]),
        scheduling=SchedulingPolicy(record["scheduling"]),
        makespan=record["makespan"],
        user_code={
            task_type: UserCodeMetrics(
                task_type=uc["task_type"],
                num_tasks=uc["num_tasks"],
                serial_fraction=uc["serial_fraction"],
                parallel_fraction=uc["parallel_fraction"],
                cpu_gpu_comm=uc["cpu_gpu_comm"],
            )
            for task_type, uc in record["user_code"].items()
        },
        movement=(
            None
            if movement is None
            else DataMovementMetrics(
                num_cores=movement["num_cores"],
                deserialization_per_core=movement["deserialization_per_core"],
                serialization_per_core=movement["serialization_per_core"],
            )
        ),
        parallel_task_time=record["parallel_task_time"],
        dag_width=record["dag_width"],
        dag_height=record["dag_height"],
        num_tasks=record["num_tasks"],
        error=record["error"],
        trace_digest=record.get("trace_digest", ""),
    )


class SweepCache:
    """Digest-keyed JSON records under one root directory.

    Entries are sharded by the first two digest characters
    (``<root>/ab/<digest>.json``) so even large caches keep directories
    small.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, digest: str) -> Path:
        """The record file path of one cell digest."""
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> dict[str, Any] | None:
        """Load one record, or ``None`` on miss/corruption/schema change."""
        path = self.path_for(digest)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("schema") != SCHEMA:
            return None
        return record

    def put(self, digest: str, record: dict[str, Any]) -> Path:
        """Atomically write one record (last writer wins on races)."""
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"schema": SCHEMA, **record}, sort_keys=True, separators=(",", ":")
        )
        handle = tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=path.parent,
            prefix=f".{digest[:8]}-",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(payload)
            os.replace(handle.name, path)
        except OSError:
            Path(handle.name).unlink(missing_ok=True)
            raise
        return path

    def discard(self, digest: str) -> None:
        """Remove one record if present."""
        self.path_for(digest).unlink(missing_ok=True)

    def iter_paths(self):
        """All record files currently in the cache."""
        if not self.root.is_dir():
            return
        yield from sorted(self.root.glob("*/*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_paths())

    def prune(self, fingerprint: str) -> int:
        """Delete records not written by ``fingerprint``; return the count.

        Stale entries can never be hit (the fingerprint is baked into the
        digest key), so pruning only reclaims disk — it cannot change any
        result.
        """
        evicted = 0
        for path in self.iter_paths():
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                stale = (
                    not isinstance(record, dict)
                    or record.get("schema") != SCHEMA
                    or record.get("fingerprint") != fingerprint
                )
            except (OSError, ValueError):
                stale = True
            if stale:
                path.unlink(missing_ok=True)
                evicted += 1
        return evicted
