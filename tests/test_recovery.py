"""Lineage recovery, checkpointing, speculation, and cooldown tests.

Covers the recovery layer end to end:

* unit contracts of :class:`CheckpointPolicy` and the new
  :class:`RetryPolicy` knobs;
* lineage recomputation after a node failure (the tentpole), with and
  without checkpoints bounding the recovery depth;
* blacklist cooldown reboots, speculative re-execution races, and the
  executor-vs-trace metrics consistency;
* the WF303/WF304 analyzer rules;
* a Hypothesis property — any single node fault on a generated DAG with
  recovery enabled and a surviving node must complete ``failed=False``;
* the determinism contract — every golden-matrix cell still reproduces
  its recorded fingerprint with the recovery machinery switched on but
  idle (fault-free cells), proving recovery is a strict opt-in.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms import GeneratedDagWorkflow
from repro.analysis import analyze
from repro.faults import (
    CheckpointPolicy,
    FaultPlan,
    NodeFault,
    RetryPolicy,
    Straggler,
)
from repro.hardware import minotauro
from repro.perfmodel import TaskCost
from repro.runtime import Runtime, RuntimeConfig, SchedulingPolicy
from repro.tracing import Stage, fault_metrics
from tests.golden_matrix import golden_cases
from tests.trace_invariants import assert_result_invariants

GOLDEN_PATH = Path(__file__).parent / "golden" / "simulator_digests.json"

RECOVERY = RetryPolicy(max_attempts=3, recover_lost_blocks=True)


def _run_generated(
    plan=None,
    policy=None,
    nodes=4,
    width=8,
    depth=6,
    seed=3,
    **cfg,
):
    config = RuntimeConfig(
        cluster=minotauro(num_nodes=nodes),
        fault_plan=plan,
        retry_policy=policy,
        **cfg,
    )
    runtime = Runtime(config)
    GeneratedDagWorkflow(
        width=width, depth=depth, fan_in=3, block_mb=4.0, seed=seed
    ).build(runtime)
    return runtime.run()


def _node_fault_at_fraction(fraction, node=1, **kwargs):
    """A NodeFault timed relative to the workload's clean makespan."""
    clean = _run_generated(**kwargs)
    return clean, FaultPlan(
        node_faults=(NodeFault(node=node, at_time=fraction * clean.makespan),)
    )


class TestCheckpointPolicy:
    def test_applies_interval(self):
        policy = CheckpointPolicy(every_levels=2)
        assert [policy.applies("t", lvl) for lvl in range(5)] == [
            False, True, False, True, False,
        ]

    def test_applies_every_level(self):
        policy = CheckpointPolicy(every_levels=1)
        assert all(policy.applies("t", lvl) for lvl in range(4))

    def test_applies_task_types(self):
        policy = CheckpointPolicy(every_levels=1, task_types={"merge"})
        assert policy.applies("merge", 0)
        assert not policy.applies("stage", 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(every_levels=0)

    def test_json_round_trip(self):
        policy = CheckpointPolicy(every_levels=3, task_types={"b", "a"})
        clone = CheckpointPolicy.from_json(policy.to_json())
        assert clone == policy
        assert json.loads(policy.to_json())["task_types"] == ["a", "b"]

    def test_json_round_trip_all_types(self):
        policy = CheckpointPolicy(every_levels=2)
        assert CheckpointPolicy.from_json(policy.to_json()) == policy


class TestRetryPolicyKnobs:
    def test_speculation_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            RetryPolicy(speculation_factor=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(speculation_min_samples=0)

    def test_cooldown_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy(blacklist_cooldown=0.0)

    def test_speculation_enabled(self):
        assert not RetryPolicy().speculation_enabled
        assert RetryPolicy(speculation_factor=2.0).speculation_enabled


class TestLineageRecovery:
    def test_node_loss_recovers_without_failure(self):
        clean, plan = _node_fault_at_fraction(0.4)
        result = _run_generated(plan=plan, policy=RECOVERY)
        assert not result.failed
        assert result.recovery_metrics.blocks_lost > 0
        assert result.recovery_metrics.tasks_resurrected > 0
        assert result.recovery_metrics.recompute_seconds > 0
        # Resurrected tasks commit twice (one record per commit), but the
        # distinct committed set must match the fault-free run exactly.
        committed = {t.task_id for t in result.trace.tasks}
        assert committed == {t.task_id for t in clean.trace.tasks}
        assert_result_invariants(result)

    def test_recovery_disabled_ignores_block_loss(self):
        _, plan = _node_fault_at_fraction(0.4)
        result = _run_generated(
            plan=plan, policy=RetryPolicy(max_attempts=3)
        )
        # Pre-recovery semantics: block loss is not modeled at all —
        # reads from the dead node's refs still succeed, so nothing is
        # resurrected and no RECOMPUTE marker may appear.
        assert result.recovery_metrics.tasks_resurrected == 0
        assert not any(
            s.stage is Stage.RECOMPUTE for s in result.trace.stages
        )
        assert_result_invariants(result)

    def test_resurrected_tasks_emit_recompute_markers(self):
        _, plan = _node_fault_at_fraction(0.4)
        result = _run_generated(plan=plan, policy=RECOVERY)
        markers = [
            s for s in result.trace.stages if s.stage is Stage.RECOMPUTE
        ]
        assert len(markers) == result.recovery_metrics.tasks_resurrected
        committed = {t.task_id for t in result.trace.tasks}
        assert {m.task_id for m in markers} <= committed

    def test_checkpoints_cut_recovery_depth(self):
        _, plan = _node_fault_at_fraction(0.4)
        deep = _run_generated(plan=plan, policy=RECOVERY)
        shallow = _run_generated(
            plan=plan,
            policy=RECOVERY,
            checkpoint_policy=CheckpointPolicy(every_levels=2),
        )
        assert not shallow.failed
        assert shallow.recovery_metrics.checkpoint_writes > 0
        assert shallow.recovery_metrics.checkpoint_write_seconds > 0
        assert (
            shallow.recovery_metrics.tasks_resurrected
            < deep.recovery_metrics.tasks_resurrected
        )
        assert_result_invariants(shallow)

    def test_checkpoint_writes_without_faults_are_pure_overhead(self):
        clean = _run_generated()
        checkpointed = _run_generated(
            checkpoint_policy=CheckpointPolicy(every_levels=1)
        )
        assert not checkpointed.failed
        assert checkpointed.recovery_metrics.checkpoint_writes > 0
        assert checkpointed.makespan >= clean.makespan
        assert_result_invariants(checkpointed)


class TestBlacklistCooldown:
    def test_rebooted_node_rejoins_scheduling(self):
        clean = _run_generated(nodes=2)
        plan = FaultPlan(
            node_faults=(NodeFault(node=1, at_time=0.2 * clean.makespan),)
        )
        policy = dataclasses.replace(
            RECOVERY, blacklist_cooldown=0.1 * clean.makespan
        )
        result = _run_generated(plan=plan, policy=policy, nodes=2)
        assert not result.failed
        reboot_time = 0.2 * clean.makespan + policy.blacklist_cooldown
        reused = [
            t
            for t in result.trace.tasks
            if t.node == 1 and t.start >= reboot_time
        ]
        assert reused, "node 1 never used again after its cooldown reboot"
        assert_result_invariants(result)

    def test_without_cooldown_node_stays_blacklisted(self):
        clean = _run_generated(nodes=2)
        plan = FaultPlan(
            node_faults=(NodeFault(node=1, at_time=0.2 * clean.makespan),)
        )
        result = _run_generated(plan=plan, policy=RECOVERY, nodes=2)
        fault_at = 0.2 * clean.makespan
        assert not any(
            t.node == 1 and t.start > fault_at for t in result.trace.tasks
        )


class TestSpeculation:
    def _straggler_run(self, factor=1.5):
        plan = FaultPlan(stragglers=(Straggler(factor=40.0, node=1),))
        policy = RetryPolicy(
            max_attempts=3,
            recover_lost_blocks=True,
            speculation_factor=factor,
        )
        return _run_generated(
            plan=plan,
            policy=policy,
            width=12,
            depth=4,
            scheduling=SchedulingPolicy.GENERATION_ORDER,
        )

    def test_backups_rescue_stragglers(self):
        result = self._straggler_run()
        metrics = result.recovery_metrics
        assert not result.failed
        assert metrics.speculative_launches > 0
        assert metrics.speculation_wins > 0
        assert (
            metrics.speculation_wins + metrics.speculation_losses
            == metrics.speculative_launches
        )
        assert_result_invariants(result)

    def test_speculative_markers_recorded(self):
        result = self._straggler_run()
        markers = [
            s for s in result.trace.stages if s.stage is Stage.SPECULATIVE
        ]
        assert len(markers) == result.recovery_metrics.speculative_launches

    def test_trace_metrics_match_executor_metrics(self):
        result = self._straggler_run()
        derived = fault_metrics(result.trace)
        metrics = result.recovery_metrics
        assert derived.tasks_resurrected == metrics.tasks_resurrected
        assert derived.checkpoint_writes == metrics.checkpoint_writes
        assert derived.speculative_launches == metrics.speculative_launches
        assert derived.speculation_wins == metrics.speculation_wins
        assert derived.speculation_losses == metrics.speculation_losses


class TestAnalyzerRules:
    def _barrier_graph(self):
        """Fan-out -> single merge barrier -> fan-out (WF303's shape)."""
        cost = TaskCost(
            serial_flops=1e9,
            parallel_flops=0.0,
            parallel_items=0.0,
            arithmetic_intensity=10.0,
            input_bytes=10**6,
            output_bytes=10**5,
            host_device_bytes=0,
            gpu_memory_bytes=0,
        )
        runtime = Runtime(RuntimeConfig(cluster=minotauro(num_nodes=4)))
        outs = []
        for i in range(4):
            ref = runtime.register_input(10**6, name=f"in{i}")
            outs.extend(runtime.submit(name="stage", inputs=[ref], cost=cost))
        merged = runtime.submit(name="merge", inputs=outs, cost=cost)
        for _ in range(4):
            runtime.submit(name="post", inputs=list(merged), cost=cost)
        return runtime.graph

    def test_wf303_fires_without_checkpoints(self):
        graph = self._barrier_graph()
        plan = FaultPlan(node_faults=(NodeFault(node=1, at_time=1.0),))
        report = analyze(
            graph, minotauro(num_nodes=4), fault_plan=plan,
            retry_policy=RECOVERY,
        )
        assert "WF303" in report.codes()

    def test_wf303_silenced_by_checkpoint_policy(self):
        graph = self._barrier_graph()
        plan = FaultPlan(node_faults=(NodeFault(node=1, at_time=1.0),))
        report = analyze(
            graph, minotauro(num_nodes=4), fault_plan=plan,
            retry_policy=RECOVERY,
            checkpoint_policy=CheckpointPolicy(every_levels=1),
        )
        assert "WF303" not in report.codes()

    def test_wf303_quiet_without_node_faults(self):
        graph = self._barrier_graph()
        report = analyze(
            graph, minotauro(num_nodes=4), fault_plan=FaultPlan(),
            retry_policy=RECOVERY,
        )
        assert "WF303" not in report.codes()

    def test_wf304_fires_on_single_node(self):
        graph = self._barrier_graph()
        report = analyze(
            graph, minotauro(num_nodes=1),
            retry_policy=RetryPolicy(speculation_factor=2.0),
        )
        assert "WF304" in report.codes()

    def test_wf304_quiet_on_multi_node(self):
        graph = self._barrier_graph()
        report = analyze(
            graph, minotauro(num_nodes=4),
            retry_policy=RetryPolicy(speculation_factor=2.0),
        )
        assert "WF304" not in report.codes()


class TestRecoveryProperty:
    @given(
        node=st.integers(min_value=0, max_value=3),
        fraction=st.floats(min_value=0.05, max_value=0.95),
        width=st.integers(min_value=4, max_value=10),
        depth=st.integers(min_value=3, max_value=6),
        seed=st.integers(min_value=0, max_value=50),
        checkpoint=st.booleans(),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_single_node_fault_always_recovers(
        self, node, fraction, width, depth, seed, checkpoint
    ):
        """Any single node fault with >= 2 live nodes must be survivable:
        every block is either on a live node, checkpointed, or
        recomputable from lineage rooted at durable workflow inputs."""
        clean = _run_generated(width=width, depth=depth, seed=seed)
        plan = FaultPlan(
            node_faults=(
                NodeFault(node=node, at_time=fraction * clean.makespan),
            )
        )
        result = _run_generated(
            plan=plan,
            policy=RECOVERY,
            width=width,
            depth=depth,
            seed=seed,
            checkpoint_policy=(
                CheckpointPolicy(every_levels=2) if checkpoint else None
            ),
        )
        assert not result.failed
        assert {t.task_id for t in result.trace.tasks} == {
            t.task_id for t in clean.trace.tasks
        }
        assert_result_invariants(result)

    def test_recovery_recompute_resets_array_indegree(self):
        """Regression for the array-backed bookkeeping migration.

        Lineage recovery re-injects already-settled tasks for
        recomputation; their dependency counters must be rebuilt in the
        executor's indegree array, not left at the zero they drained to
        on first execution, or a recomputed task can dispatch before its
        recomputed inputs exist.  This is the exact falsifying example
        Hypothesis produced against an early draft of the migration."""
        clean = _run_generated(width=10, depth=4, seed=10)
        plan = FaultPlan(
            node_faults=(
                NodeFault(node=0, at_time=0.15234375 * clean.makespan),
            )
        )
        result = _run_generated(
            plan=plan, policy=RECOVERY, width=10, depth=4, seed=10
        )
        assert not result.failed
        assert {t.task_id for t in result.trace.tasks} == {
            t.task_id for t in clean.trace.tasks
        }
        assert_result_invariants(result)


class TestDeterminismContract:
    """Recovery machinery must be invisible until it is needed."""

    @pytest.fixture(scope="class")
    def recorded(self) -> dict:
        return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

    @pytest.mark.parametrize(
        "case", golden_cases(), ids=lambda case: case.key
    )
    def test_golden_cells_with_recovery_active(self, case, recorded):
        from repro.tracing import trace_digest

        policy = case.config.retry_policy or RetryPolicy(max_attempts=3)
        armed = dataclasses.replace(policy, recover_lost_blocks=True)
        config = dataclasses.replace(case.config, retry_policy=armed)
        runtime = Runtime(config)
        case.build(runtime)
        result = runtime.run()
        assert_result_invariants(result)
        if not case.faults:
            # Fault-free: nothing is ever lost, so arming recovery must
            # not move a single timestamp — byte-identical fingerprint.
            digest = trace_digest(result.trace, result.failed_task_ids)
            assert digest == recorded[case.key]["digest"], (
                f"{case.key}: arming recover_lost_blocks perturbed a "
                "fault-free execution"
            )
        else:
            # Faulted: recovery may legitimately change the outcome; the
            # plan's node fault must now be survivable unless the crash
            # budget itself was exhausted.
            assert result.trace.attempts
