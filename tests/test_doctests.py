"""Run the doctests embedded in module docstrings."""

import doctest

import pytest

import repro.core.correlation
import repro.perfmodel.amdahl
import repro.sim.engine


@pytest.mark.parametrize(
    "module",
    [repro.sim.engine, repro.core.correlation, repro.perfmodel.amdahl],
)
def test_module_doctests(module):
    failures, attempted = doctest.testmod(module).failed, doctest.testmod(module).attempted
    assert attempted > 0, f"{module.__name__} has no doctests"
    assert failures == 0
