"""Figure 11 — Spearman correlation of all factors and parameters (§5.4).

A full-factorial sample set (the paper uses 192 samples spanning both
algorithms, three dataset sizes each — including the small 128 MB / 100 MB
datasets added for this analysis — every grid dimension, both processor
types, both storage architectures, and both scheduling policies) is
executed on the simulated cluster; each sample contributes one row of
features (factors, parameters, and the measured parallel-task execution
time).  Categorical features are one-hot encoded and the Spearman rank
correlation is computed between every pair.

The paper's key cells, used as shape targets by the benchmark:

===============================  ======
pair                              rho
===============================  ======
exec time ~ block size            +0.40
exec time ~ parallel fraction     +0.38
exec time ~ computational compl.  +0.50
exec time ~ DAG max width         -0.005
exec time ~ dataset size          -0.009
exec time ~ shared disk           +0.19
exec time ~ CPU                   +0.07
GPU ~ parallel fraction           -0.46
block size ~ grid dimension       -0.78
===============================  ======
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.algorithms import KMeansWorkflow, MatmulWorkflow
from repro.core.correlation import CorrelationMatrix, spearman_matrix
from repro.core.experiments.engine import CellSpec, SweepEngine
from repro.core.report import Table
from repro.data import paper_datasets
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy

#: Feature names in the order of the paper's Figure 11 matrix.
FEATURES = (
    "parallel_task_exec_time",
    "block_size",
    "grid_dimension",
    "parallel_fraction",
    "algorithm_specific_param",
    "computational_complexity",
    "dag_max_width",
    "dag_max_height",
    "dataset_size",
    "cpu",
    "gpu",
    "shared_disk_storage",
    "local_disk_storage",
    "task_gen_order_scheduling",
    "data_locality_scheduling",
)

#: Paper values for the cells the benchmark compares against.
PAPER_REFERENCE = {
    ("parallel_task_exec_time", "block_size"): 0.398,
    ("parallel_task_exec_time", "parallel_fraction"): 0.377,
    ("parallel_task_exec_time", "computational_complexity"): 0.499,
    ("parallel_task_exec_time", "dag_max_width"): -0.005,
    ("parallel_task_exec_time", "dataset_size"): -0.009,
    ("parallel_task_exec_time", "shared_disk_storage"): 0.194,
    ("parallel_task_exec_time", "cpu"): 0.066,
    ("gpu", "parallel_fraction"): -0.460,
    ("block_size", "grid_dimension"): -0.778,
}


@dataclass(frozen=True)
class SamplePlan:
    """One planned execution in the factorial design."""

    algorithm: str
    dataset_key: str
    grid: int
    n_clusters: int
    use_gpu: bool
    storage: StorageKind
    scheduling: SchedulingPolicy


def default_design() -> list[SamplePlan]:
    """The 192-sample factorial design mirroring §5.4.

    Base sweeps on shared disk + generation order (both algorithms, three
    dataset sizes each), the Figure 10 storage/scheduler extras, and the
    Figure 9a cluster-count extras.
    """
    plans: list[SamplePlan] = []
    matmul_grids = (16, 8, 4, 2, 1)
    kmeans_grids = (256, 128, 64, 32, 16, 8, 4, 2, 1)
    shared = StorageKind.SHARED
    local = StorageKind.LOCAL
    gen = SchedulingPolicy.GENERATION_ORDER
    loc = SchedulingPolicy.DATA_LOCALITY

    def add(algorithm, dataset_key, grid, clusters, gpu, storage, sched) -> None:
        plans.append(
            SamplePlan(algorithm, dataset_key, grid, clusters, gpu, storage, sched)
        )

    # Base sweeps: shared disk, generation order.
    for dataset_key in ("matmul_128mb", "matmul_8gb", "matmul_32gb"):
        for grid in matmul_grids:
            for gpu in (False, True):
                add("matmul", dataset_key, grid, 0, gpu, shared, gen)
    for dataset_key in ("kmeans_100mb", "kmeans_10gb", "kmeans_100gb"):
        for grid in kmeans_grids:
            for gpu in (False, True):
                add("kmeans", dataset_key, grid, 10, gpu, shared, gen)

    # Storage x scheduler extras (Figure 10 design).
    for storage, sched in ((local, gen), (local, loc), (shared, loc)):
        for grid in matmul_grids:
            for gpu in (False, True):
                add("matmul", "matmul_8gb", grid, 0, gpu, storage, sched)
        for grid in kmeans_grids:
            for gpu in (False, True):
                add("kmeans", "kmeans_10gb", grid, 10, gpu, storage, sched)

    # Cluster-count extras (Figure 9a design).
    for clusters in (100, 1000):
        for grid in (256, 128, 64, 32, 16, 8):
            for gpu in (False, True):
                add("kmeans", "kmeans_10gb", grid, clusters, gpu, shared, gen)
    return plans


@dataclass
class Fig11Result:
    """The correlation analysis output."""

    matrix: CorrelationMatrix
    n_samples: int
    n_planned: int
    n_oom: int
    columns: dict[str, list[float]] = field(default_factory=dict)

    def value(self, a: str, b: str) -> float:
        """rho between two named features."""
        return self.matrix.value(a, b)

    def render(self) -> str:
        """The matrix plus the paper-reference comparison."""
        parts = [
            self.matrix.render(),
            "",
            f"samples: {self.n_samples} valid of {self.n_planned} planned "
            f"({self.n_oom} OOM)",
            "",
        ]
        table = Table(
            title="Key cells vs the paper",
            headers=("feature pair", "paper rho", "measured rho"),
        )
        for (a, b), paper_value in PAPER_REFERENCE.items():
            table.add_row(f"{a} ~ {b}", f"{paper_value:+.3f}", f"{self.value(a, b):+.3f}")
        parts.append(table.render())
        return "\n".join(parts)


def _make_workflow(plan: SamplePlan, datasets) -> object:
    dataset = datasets[plan.dataset_key]
    if plan.algorithm == "matmul":
        return MatmulWorkflow(dataset, grid=plan.grid)
    return KMeansWorkflow(
        dataset, grid_rows=plan.grid, n_clusters=plan.n_clusters, iterations=3
    )


def plan_cell(plan: SamplePlan) -> CellSpec:
    """The sweep-engine cell equivalent of one sample plan.

    The mapping is exact: base-design plans produce the same cells as the
    Figure 7/9a/10 sweeps, so a shared engine dedupes them for free.
    """
    return CellSpec(
        algorithm=plan.algorithm,
        grid=plan.grid,
        dataset_key=plan.dataset_key,
        n_clusters=plan.n_clusters,
        use_gpu=plan.use_gpu,
        storage=plan.storage,
        scheduling=plan.scheduling,
    )


def run_fig11(
    plans: Sequence[SamplePlan] | None = None,
    engine: SweepEngine | None = None,
) -> Fig11Result:
    """Execute the factorial design and build the Spearman matrix."""
    engine = engine if engine is not None else SweepEngine.serial()
    datasets = paper_datasets()
    plans = list(plans) if plans is not None else default_design()
    columns: dict[str, list[float]] = {feature: [] for feature in FEATURES}
    n_oom = 0
    results = engine.run_cells([plan_cell(plan) for plan in plans])
    for plan, metrics in zip(plans, results):
        # One workflow per plan, for blocking/cost metadata only.
        workflow = _make_workflow(plan, datasets)
        if not metrics.ok:
            n_oom += 1
            continue
        blocking = workflow.blocking
        primary = workflow.primary_task_type
        cost = workflow.task_costs()[primary]
        columns["parallel_task_exec_time"].append(metrics.parallel_task_time)
        columns["block_size"].append(float(blocking.block_bytes))
        columns["grid_dimension"].append(float(blocking.grid.num_blocks))
        columns["parallel_fraction"].append(
            metrics.user_code[primary].parallel_fraction
        )
        columns["algorithm_specific_param"].append(float(plan.n_clusters))
        columns["computational_complexity"].append(cost.parallel_flops)
        columns["dag_max_width"].append(float(metrics.dag_width))
        columns["dag_max_height"].append(float(metrics.dag_height))
        columns["dataset_size"].append(float(blocking.dataset.size_bytes))
        columns["cpu"].append(0.0 if plan.use_gpu else 1.0)
        columns["gpu"].append(1.0 if plan.use_gpu else 0.0)
        columns["shared_disk_storage"].append(
            1.0 if plan.storage is StorageKind.SHARED else 0.0
        )
        columns["local_disk_storage"].append(
            1.0 if plan.storage is StorageKind.LOCAL else 0.0
        )
        columns["task_gen_order_scheduling"].append(
            1.0 if plan.scheduling is SchedulingPolicy.GENERATION_ORDER else 0.0
        )
        columns["data_locality_scheduling"].append(
            1.0 if plan.scheduling is SchedulingPolicy.DATA_LOCALITY else 0.0
        )
    matrix = spearman_matrix(columns)
    return Fig11Result(
        matrix=matrix,
        n_samples=len(columns["parallel_task_exec_time"]),
        n_planned=len(plans),
        n_oom=n_oom,
        columns=columns,
    )
