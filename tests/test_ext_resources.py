"""Tests for the resource-parameter sensitivity experiment."""

import pytest

from repro.core.experiments.ext_resources import (
    SWEEPS,
    run_resource_sensitivity,
)


class TestSweepDefinitions:
    def test_four_deferred_parameters(self):
        assert set(SWEEPS) == {
            "gpus_per_node",
            "gpu_memory",
            "bus_bandwidth",
            "shared_disk_bandwidth",
        }

    def test_baseline_value_present_in_each_sweep(self):
        # Each sweep passes through the Minotauro baseline so results are
        # comparable across parameters.
        values = {name: sweep[0] for name, sweep in SWEEPS.items()}
        assert 4 in values["gpus_per_node"]
        assert 12 * 1024**3 in values["gpu_memory"]
        assert 2.0e9 in values["bus_bandwidth"]
        assert 2.0e9 in values["shared_disk_bandwidth"]

    def test_builders_produce_valid_clusters(self):
        from repro.hardware import minotauro

        base = minotauro()
        for values, build, fmt in SWEEPS.values():
            for value in values:
                cluster = build(base, value)
                assert cluster.num_nodes == base.num_nodes
                assert isinstance(fmt(value), str)


class TestSmallSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_resource_sensitivity(
            matmul_grid=4, kmeans_grid=32, parameters=("gpus_per_node",)
        )

    def test_points_cover_sweep(self, result):
        labels = set(result.series("gpus_per_node", "kmeans"))
        assert labels == {"1", "2", "4", "8"}

    def test_more_gpus_never_slower(self, result):
        series = result.series("gpus_per_node", "kmeans")
        ordered = [series[label] for label in ("1", "2", "4", "8")]
        assert all(a >= b * 0.999 for a, b in zip(ordered, ordered[1:]))

    def test_sensitivity_of_inert_parameter_is_one(self):
        result = run_resource_sensitivity(
            matmul_grid=4, kmeans_grid=32, parameters=("gpu_memory",)
        )
        assert result.sensitivity("gpu_memory", "kmeans") == pytest.approx(1.0)

    def test_render(self, result):
        text = result.render()
        assert "sensitivity gpus_per_node" in text
