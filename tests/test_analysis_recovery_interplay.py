"""Analyzer x recovery interplay: the resilience and race rules must
agree with the recovery machinery — firing when lineage recovery /
checkpoint barriers are armed into a hazardous combination, and staying
quiet on every cell of the golden-trace matrix (whose fault cells retry
without recovery, checkpoints, or speculation)."""

import pytest

from repro.analysis import analyze, analyze_runtime
from repro.faults import (
    CheckpointPolicy,
    FaultPlan,
    NodeFault,
    RetryPolicy,
    TaskCrash,
)
from repro.hardware import minotauro
from repro.perfmodel import TaskCost
from repro.runtime import DataRef, Runtime, Task, TaskGraph
from repro.tracing import Stage

from tests.golden_matrix import golden_cases


def _cost() -> TaskCost:
    return TaskCost(
        serial_flops=1e6,
        parallel_flops=1e9,
        parallel_items=1e6,
        arithmetic_intensity=10.0,
        input_bytes=1_000_000,
        output_bytes=1_000_000,
        host_device_bytes=2_000_000,
        gpu_memory_bytes=4_000_000,
        host_memory_bytes=4_000_000,
    )


def _barrier_graph() -> TaskGraph:
    """fan-in -> barrier -> fan-out: the WF303 shape."""
    graph = TaskGraph()
    heads = []
    for i in range(3):
        head = Task(
            task_id=i,
            name="map",
            inputs=(),
            outputs=(DataRef(size_bytes=8, name=f"m{i}"),),
            cost=_cost(),
        )
        graph.add_task(head)
        heads.append(head)
    barrier = Task(
        task_id=3,
        name="reduce",
        inputs=tuple(h.outputs[0] for h in heads),
        outputs=(DataRef(size_bytes=8, name="r"),),
        cost=_cost(),
    )
    graph.add_task(barrier)
    for i in range(4, 7):
        graph.add_task(
            Task(
                task_id=i,
                name="post",
                inputs=barrier.outputs,
                outputs=(DataRef(size_bytes=8, name=f"p{i}"),),
                cost=_cost(),
            )
        )
    return graph


_NODE_FAULTS = FaultPlan(node_faults=(NodeFault(node=1, at_time=0.2),))


class TestRecoveryArmsTheRules:
    def test_wf303_fires_with_recovery_but_no_checkpoint(self):
        report = analyze(
            _barrier_graph(),
            minotauro(),
            fault_plan=_NODE_FAULTS,
            retry_policy=RetryPolicy(max_attempts=3, recover_lost_blocks=True),
        )
        [finding] = [d for d in report.warnings if d.code == "WF303"]
        assert 3 in finding.task_ids  # the reduce barrier

    def test_wf303_silenced_by_checkpoint_policy(self):
        report = analyze(
            _barrier_graph(),
            minotauro(),
            fault_plan=_NODE_FAULTS,
            retry_policy=RetryPolicy(max_attempts=3, recover_lost_blocks=True),
            checkpoint_policy=CheckpointPolicy(every_levels=1),
        )
        assert "WF303" not in report.codes()

    def test_wf304_fires_with_speculation_on_one_node(self):
        report = analyze(
            _barrier_graph(),
            minotauro(1),
            retry_policy=RetryPolicy(max_attempts=3, speculation_factor=2.0),
        )
        assert "WF304" in report.codes()

    def test_checkpointed_speculation_raises_wf403_alongside_wf304(self):
        report = analyze(
            _barrier_graph(),
            minotauro(1),
            retry_policy=RetryPolicy(max_attempts=3, speculation_factor=2.0),
            checkpoint_policy=CheckpointPolicy(every_levels=1),
        )
        assert {"WF304", "WF403"} <= report.codes()

    def test_doomed_barrier_raises_read_after_free(self):
        plan = FaultPlan(
            node_faults=(NodeFault(node=1, at_time=0.2),),
            task_crashes=(
                TaskCrash(
                    task_id=3,
                    stage=Stage.SERIAL_FRACTION,
                    attempts=(1, 2, 3),
                ),
            ),
        )
        report = analyze(
            _barrier_graph(),
            minotauro(),
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=3, recover_lost_blocks=True),
        )
        [finding] = [d for d in report.warnings if d.code == "WF402"]
        assert finding.task_ids == (3,)
        # Checkpointing the barrier removes the hazard: the lineage walk
        # stops at the durable copy before reaching the doomed task.
        protected = analyze(
            _barrier_graph(),
            minotauro(),
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=3, recover_lost_blocks=True),
            checkpoint_policy=CheckpointPolicy(
                every_levels=1, task_types=frozenset({"reduce"})
            ),
        )
        assert "WF402" not in protected.codes()


class TestGoldenMatrixStaysQuiet:
    """The 18 golden cells are the determinism anchor: the WF4xx race
    rules must not fire on any of them (their fault cells retry without
    lineage recovery, checkpoints, or speculation)."""

    @pytest.mark.parametrize(
        "case", golden_cases(), ids=lambda case: case.key
    )
    def test_no_race_findings(self, case):
        runtime = Runtime(case.config)
        case.build(runtime)
        report = analyze_runtime(runtime)
        races = {c for c in report.codes() if c.startswith("WF4")}
        assert races == set()
        # Nor may any cell be statically *broken*: errors would mean the
        # golden fixtures encode an illegal execution.
        assert not report.has_errors
