"""Property-based tests for the scheduling policies.

Rather than enumerating cluster states by hand, Hypothesis generates
random ready queues, node capacities, and blacklists, and asserts the
contracts every policy must honour:

* an :class:`Assignment` always targets a node with a free slot;
* a blacklisted node is never chosen, whatever the policy;
* ``GenerationOrderScheduler`` always dispatches the head of the queue;
* round-robin node choice wraps around and spreads consecutive picks;
* ``DataLocalityScheduler`` breaks all-zero locality ties round-robin
  instead of piling every tie onto node 0 (regression for the
  tie-breaking fix);
* the fast dispatch path's incrementally maintained state — the ready
  queue, the GPU-intended counter, and the per-node
  :class:`~repro.runtime.locality.LocalityIndex` — equals a from-scratch
  recomputation after **every** ready-set mutation of a full simulated
  run (random generated DAGs, with and without injected faults);
* locality scoring resolves input bytes against *current* block
  residency, so a stale ``home_node`` (block moved or evicted since the
  ref was written) earns no credit.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import GeneratedDagWorkflow
from repro.faults import FaultPlan, NodeFault, RetryPolicy
from repro.hardware import StorageKind
from repro.perfmodel import TaskCost
from repro.runtime import DataRef, Runtime, RuntimeConfig, SchedulingPolicy, Task
from repro.runtime.backends.simulated import SimulatedExecutor
from repro.runtime.locality import LocalityIndex
from repro.runtime.scheduler import (
    DataLocalityScheduler,
    GenerationOrderScheduler,
    LifoScheduler,
    make_scheduler,
)


class FakeCluster:
    """A ClusterView stub with per-node availability and a blacklist."""

    def __init__(self, free_cores, free_gpus=None, blacklist=()):
        self.free_cores = list(free_cores)
        self.free_gpus = list(free_gpus or [1] * len(free_cores))
        self.blacklist = set(blacklist)

    def num_nodes(self):
        return len(self.free_cores)

    def is_blacklisted(self, node):
        return node in self.blacklist

    def has_free_slot(self, node, needs_gpu, ram_bytes=0):
        if self.free_cores[node] < 1:
            return False
        if needs_gpu and self.free_gpus[node] < 1:
            return False
        return True


def _task(task_id, input_homes=()):
    cost = TaskCost(
        serial_flops=1.0,
        parallel_flops=0.0,
        parallel_items=0.0,
        arithmetic_intensity=1.0,
        input_bytes=100,
        output_bytes=10,
        host_device_bytes=0,
        gpu_memory_bytes=0,
    )
    return Task(
        task_id=task_id,
        name=f"t{task_id}",
        inputs=tuple(DataRef(size_bytes=100, home_node=h) for h in input_homes),
        outputs=(DataRef(size_bytes=10),),
        cost=cost,
    )


def _never_gpu(task):
    return False


@st.composite
def cluster_and_ready(draw):
    """A random cluster state plus a random ready queue."""
    n = draw(st.integers(min_value=1, max_value=6))
    free_cores = draw(
        st.lists(st.integers(0, 3), min_size=n, max_size=n)
    )
    free_gpus = draw(st.lists(st.integers(0, 2), min_size=n, max_size=n))
    blacklist = draw(st.sets(st.integers(0, n - 1), max_size=n))
    cluster = FakeCluster(free_cores, free_gpus, blacklist)
    num_ready = draw(st.integers(0, 8))
    ready = [
        _task(i, input_homes=draw(st.lists(st.integers(0, n - 1), max_size=3)))
        for i in range(num_ready)
    ]
    return cluster, ready


ALL_POLICIES = list(SchedulingPolicy)


@settings(max_examples=60, deadline=None)
@given(state=cluster_and_ready(), policy=st.sampled_from(ALL_POLICIES))
def test_assignment_targets_free_non_blacklisted_node(state, policy):
    cluster, ready = state
    scheduler = make_scheduler(policy)
    choice = scheduler.select(ready, cluster, _never_gpu)
    if choice is None:
        return
    assert choice.task in ready
    assert cluster.has_free_slot(choice.node, False)
    assert not cluster.is_blacklisted(choice.node)


@settings(max_examples=60, deadline=None)
@given(state=cluster_and_ready(), policy=st.sampled_from(ALL_POLICIES))
def test_none_only_when_no_placement_exists(state, policy):
    # A scheduler may only give up when every (queue-head, node) pairing
    # it considers is infeasible; with a uniformly usable node and a
    # non-empty queue it must place something.
    cluster, ready = state
    usable = [
        node
        for node in range(cluster.num_nodes())
        if cluster.has_free_slot(node, False) and not cluster.is_blacklisted(node)
    ]
    scheduler = make_scheduler(policy)
    choice = scheduler.select(ready, cluster, _never_gpu)
    if ready and usable:
        assert choice is not None


@settings(max_examples=60, deadline=None)
@given(state=cluster_and_ready())
def test_generation_order_always_picks_queue_head(state):
    cluster, ready = state
    scheduler = GenerationOrderScheduler()
    choice = scheduler.select(ready, cluster, _never_gpu)
    if choice is not None:
        assert choice.task is ready[0]


@settings(max_examples=60, deadline=None)
@given(state=cluster_and_ready())
def test_lifo_always_picks_queue_tail(state):
    cluster, ready = state
    scheduler = LifoScheduler()
    choice = scheduler.select(ready, cluster, _never_gpu)
    if choice is not None:
        assert choice.task is ready[-1]


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 6), picks=st.integers(2, 20))
def test_round_robin_wraps_around(n, picks):
    # With every node free, consecutive picks cycle 0, 1, ..., n-1, 0, ...
    scheduler = GenerationOrderScheduler()
    cluster = FakeCluster([10] * n)
    nodes = [
        scheduler.select([_task(i)], cluster, _never_gpu).node
        for i in range(picks)
    ]
    assert nodes == [i % n for i in range(picks)]


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 6), picks=st.integers(2, 20))
def test_locality_all_zero_ties_round_robin(n, picks):
    # Regression: tasks with no local input bytes anywhere used to land on
    # node 0 every time; ties must now rotate like generation order.
    scheduler = DataLocalityScheduler()
    cluster = FakeCluster([10] * n)
    nodes = [
        scheduler.select([_task(i)], cluster, _never_gpu).node
        for i in range(picks)
    ]
    assert nodes == [i % n for i in range(picks)]
    assert len(set(nodes)) == min(n, picks)


@settings(max_examples=60, deadline=None)
@given(state=cluster_and_ready())
def test_locality_still_prefers_owner_over_rotation(state):
    # The tie-break fix must not weaken the policy itself: when one node
    # holds strictly more of the head task's bytes than all others and is
    # usable, it wins regardless of the rotation cursor.
    cluster, ready = state
    if not ready:
        return
    owner = 0
    if cluster.num_nodes() > 0:
        task = _task(99, input_homes=[owner, owner])
        scheduler = DataLocalityScheduler()
        choice = scheduler.select([task], cluster, _never_gpu)
        if (
            cluster.has_free_slot(owner, False)
            and not cluster.is_blacklisted(owner)
        ):
            assert choice is not None and choice.node == owner


def test_blacklisted_preferred_owner_falls_back():
    # Deterministic regression: the owner node is blacklisted, so the
    # locality policy must place the task elsewhere.
    scheduler = DataLocalityScheduler()
    cluster = FakeCluster([1, 1, 1], blacklist={2})
    choice = scheduler.select([_task(0, input_homes=[2])], cluster, _never_gpu)
    assert choice is not None
    assert choice.node != 2


def test_stub_without_blacklist_still_works():
    # ClusterViews that predate the blacklist (plain stubs) keep working.
    class Bare:
        def num_nodes(self):
            return 2

        def has_free_slot(self, node, needs_gpu, ram_bytes=0):
            return True

    for policy in ALL_POLICIES:
        choice = make_scheduler(policy).select([_task(0)], Bare(), _never_gpu)
        assert choice is not None


# ------------------------------------------------------- residency resolution


class ResolvingCluster(FakeCluster):
    """A view whose ``resident_node`` may disagree with ``ref.home_node``,
    modelling blocks that moved or were evicted since the ref was written."""

    def __init__(self, free_cores, residency, **kwargs):
        super().__init__(free_cores, **kwargs)
        self._residency = residency

    def resident_node(self, ref):
        return self._residency(ref)


def test_locality_scores_against_residency_not_stale_home():
    # Regression (moved block): the ref still records home_node=1, but the
    # block now lives on node 2 — the resolver, not the stale home, must
    # earn the locality credit.
    scheduler = DataLocalityScheduler()
    cluster = ResolvingCluster([1, 1, 1], residency=lambda ref: 2)
    choice = scheduler.select([_task(0, input_homes=[1, 1])], cluster, _never_gpu)
    assert choice is not None
    assert choice.node == 2


def test_locality_gives_no_credit_for_evicted_blocks():
    # Regression (evicted block): the resolver reports every input as
    # off-cluster, so the stale home_node=2 must not attract the task;
    # an all-zero tie falls back to the round-robin cursor (node 0).
    scheduler = DataLocalityScheduler()
    cluster = ResolvingCluster([1, 1, 1], residency=lambda ref: None)
    choice = scheduler.select([_task(0, input_homes=[2, 2])], cluster, _never_gpu)
    assert choice is not None
    assert choice.node == 0


def test_index_scores_win_over_both_home_and_resolver():
    # When the view maintains a LocalityIndex the scheduler must read it
    # (O(1)) instead of re-resolving; give the three sources three
    # different answers and check the index one wins.
    index = LocalityIndex()
    task = _task(0, input_homes=[1])
    index.add(task, lambda ref: 2)

    cluster = ResolvingCluster([1, 1, 1], residency=lambda ref: 0)
    cluster.locality_index = index
    choice = DataLocalityScheduler().select([task], cluster, _never_gpu)
    assert choice is not None
    assert choice.node == 2


# ------------------------------------------------- locality-index equivalence


@st.composite
def index_op_sequences(draw):
    """Random interleavings of add / discard / node-failure operations."""
    n_nodes = draw(st.integers(1, 4))
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("add"),
                    st.integers(0, 9),
                    st.lists(st.integers(0, n_nodes - 1), max_size=4),
                ),
                st.tuples(st.just("discard"), st.integers(0, 9)),
                st.tuples(st.just("drop"), st.integers(0, n_nodes - 1)),
            ),
            max_size=24,
        )
    )
    return n_nodes, ops


@settings(max_examples=80, deadline=None)
@given(state=index_op_sequences())
def test_locality_index_equals_recompute_after_every_op(state):
    # The index's incremental state must equal summing each indexed
    # task's inputs from scratch against current residency, after every
    # single mutation — including node failures purging resident bytes.
    _, ops = state
    index = LocalityIndex()
    tasks: dict[int, Task] = {}
    indexed: set[int] = set()
    dead: set[int] = set()

    def resolve(ref):
        return ref.home_node if ref.home_node not in dead else None

    for op in ops:
        if op[0] == "add":
            _, task_id, homes = op
            if task_id in indexed:
                continue  # ready-set ids are unique at any instant
            task = _task(task_id, input_homes=homes)
            tasks[task_id] = task
            indexed.add(task_id)
            index.add(task, resolve)
        elif op[0] == "discard":
            indexed.discard(op[1])
            index.discard(op[1])
        else:
            dead.add(op[1])
            index.drop_node(op[1])
        expected = {
            task_id: {
                node: total
                for node, total in _bytes_by_node(tasks[task_id], resolve).items()
            }
            for task_id in indexed
        }
        actual = index.snapshot()
        # A task whose inputs all died keeps an (empty) entry; both sides
        # score identically, so compare non-empty maps plus membership.
        assert set(actual) == indexed
        assert {t: m for t, m in actual.items() if m} == {
            t: m for t, m in expected.items() if m
        }
        for task_id in indexed:
            for node in range(4):
                assert index.bytes_for(task_id, node) == expected[task_id].get(
                    node, 0
                )


def _bytes_by_node(task, resolve):
    by_node: dict[int, int] = {}
    for ref in task.inputs:
        node = resolve(ref)
        if node is not None:
            by_node[node] = by_node.get(node, 0) + ref.size_bytes
    return by_node


# ------------------------------------------- executor-level state equivalence


class CheckedExecutor(SimulatedExecutor):
    """Re-derives the fast dispatch path's state from scratch after every
    ready-set mutation and asserts it matches the incremental version."""

    checks = 0

    def _check_state(self) -> None:
        self.checks += 1
        assert self._ready == sorted(set(self._ready))
        expected_gpu = sum(
            1 for task_id in self._ready if task_id in self._gpu_intended_ids
        )
        assert self._ready_gpu_intended == expected_gpu
        if self._locality_index is None:
            return
        expected = {
            task_id: _bytes_by_node(
                self._graph.task(task_id), self._view.resident_node
            )
            for task_id in self._ready
        }
        actual = self._locality_index.snapshot()
        assert set(actual) == set(self._ready)
        assert {t: m for t, m in actual.items() if m} == {
            t: m for t, m in expected.items() if m
        }

    def _ready_insert(self, task_id):
        super()._ready_insert(task_id)
        self._check_state()

    def _ready_remove(self, task_id):
        removed = super()._ready_remove(task_id)
        self._check_state()
        return removed


@settings(max_examples=20, deadline=None)
@given(
    width=st.integers(2, 5),
    depth=st.integers(2, 4),
    fan_in=st.integers(1, 3),
    seed=st.integers(0, 10_000),
    policy=st.sampled_from(
        [SchedulingPolicy.DATA_LOCALITY, SchedulingPolicy.GENERATION_ORDER]
    ),
    use_gpu=st.booleans(),
    faults=st.booleans(),
)
def test_incremental_dispatch_state_equals_recompute(
    width, depth, fan_in, seed, policy, use_gpu, faults
):
    # Full simulated runs over random generated DAGs: after every
    # completion event (and every dispatch) the incrementally maintained
    # ready set, GPU-intended counter, and locality index must equal a
    # from-scratch recomputation — with faults, that includes node deaths
    # purging the index mid-run.
    config = RuntimeConfig(
        storage=StorageKind.LOCAL,
        scheduling=policy,
        use_gpu=use_gpu,
        fault_plan=(
            FaultPlan(
                node_faults=(NodeFault(node=1, at_time=0.05),),
                crash_probability=0.05,
                seed=seed % 97,
            )
            if faults
            else None
        ),
        retry_policy=(
            RetryPolicy(max_attempts=2, backoff_base=0.01) if faults else None
        ),
    )
    runtime = Runtime(config)
    GeneratedDagWorkflow(
        width=width, depth=depth, fan_in=fan_in, block_mb=1.0, seed=seed
    ).build(runtime)
    executor = CheckedExecutor(
        cluster_spec=config.cluster,
        storage=config.storage,
        scheduling=config.scheduling,
        use_gpu=config.use_gpu,
        fault_plan=config.fault_plan,
        retry_policy=config.retry_policy,
    )
    executor.execute(runtime.graph)
    assert executor.checks >= width * depth
