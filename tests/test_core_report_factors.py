"""Unit tests for report rendering and the Table-1 factor framework."""

import pytest

from repro.core import (
    Dimension,
    SystemFunction,
    TABLE1_FACTORS,
    Table,
    factors_table,
    format_seconds,
    format_speedup,
)
from repro.core.factors import factors_affecting, factors_of_dimension
from repro.core.report import format_bytes_mb


class TestFormatting:
    def test_format_seconds_ranges(self):
        assert format_seconds(None) == "-"
        assert format_seconds(0) == "0"
        assert format_seconds(5e-6) == "5.0us"
        assert format_seconds(0.25) == "250.0ms"
        assert format_seconds(12.3456) == "12.35s"
        assert format_seconds(4321.0) == "4321s"

    def test_format_speedup_paper_convention(self):
        # The paper writes slowdowns as negative speedups (Figure 1).
        assert format_speedup(5.69) == "5.69x"
        assert format_speedup(1.0) == "1.00x"
        assert format_speedup(0.83) == "-1.20x"
        assert format_speedup(None) == "-"

    def test_format_bytes_mb(self):
        assert format_bytes_mb(39e6) == "39"
        assert format_bytes_mb(32 * 2**20, binary=True) == "32"


class TestTable:
    def test_render_alignment(self):
        table = Table("T", headers=("a", "bbb"))
        table.add_row(1, 22)
        table.add_row(333, 4)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bbb" in lines[2]
        assert len(lines) == 6

    def test_row_arity_checked(self):
        table = Table("T", headers=("a", "b"))
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_str_equals_render(self):
        table = Table("T", headers=("a",))
        table.add_row("x")
        assert str(table) == table.render()


class TestTable1:
    def test_eight_factors(self):
        assert len(TABLE1_FACTORS) == 8

    def test_dimension_partition(self):
        assert len(factors_of_dimension(Dimension.TASK_ALGORITHM)) == 4
        assert len(factors_of_dimension(Dimension.DATASET)) == 1
        assert len(factors_of_dimension(Dimension.RESOURCES)) == 2
        assert len(factors_of_dimension(Dimension.SYSTEM)) == 1

    def test_block_dimension_parameters(self):
        block = next(f for f in TABLE1_FACTORS if f.name == "block dimension")
        assert set(block.parameters) == {"block size", "grid dimension", "DAG shape"}

    def test_every_factor_affects_device_speedup_or_more(self):
        for factor in TABLE1_FACTORS:
            assert factor.affects, f"{factor.name} affects nothing"

    def test_footnote_mapping(self):
        # Table 1's footnote: block dimension stresses all five functions.
        block = next(f for f in TABLE1_FACTORS if f.name == "block dimension")
        assert block.affects == frozenset(SystemFunction)

    def test_storage_architecture_affects_storage_io(self):
        assert any(
            f.name == "storage architecture"
            for f in factors_affecting(SystemFunction.STORAGE_IO)
        )

    def test_scheduling_policy_affects_scheduling(self):
        assert any(
            f.name == "scheduling policy"
            for f in factors_affecting(SystemFunction.TASK_SCHEDULING)
        )

    def test_render_contains_all_factors(self):
        text = factors_table().render()
        for factor in TABLE1_FACTORS:
            assert factor.name in text


class TestMarkdownRender:
    def test_markdown_structure(self):
        table = Table("Title", headers=("a", "b"))
        table.add_row(1, 2)
        text = table.render_markdown()
        lines = text.splitlines()
        assert lines[0] == "**Title**"
        assert lines[2] == "| a | b |"
        assert lines[3] == "|---|---|"
        assert lines[4] == "| 1 | 2 |"

    def test_markdown_of_table1(self):
        text = factors_table().render_markdown()
        assert "| Dimension |" in text
        assert "block dimension" in text
