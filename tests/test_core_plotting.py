"""Tests for the ASCII chart renderers."""

import pytest

from repro.core.plotting import bar_chart, line_chart, speedup_chart


class TestLineChart:
    def test_contains_title_and_legend(self):
        text = line_chart({"cpu": {1.0: 1.0, 2.0: 2.0}}, title="T")
        assert text.startswith("T")
        assert "legend: o cpu" in text

    def test_multiple_series_get_distinct_markers(self):
        text = line_chart({"a": {1.0: 1.0}, "b": {1.0: 2.0}})
        assert "o a" in text and "x b" in text

    def test_none_values_skipped(self):
        text = line_chart({"s": {1.0: 1.0, 2.0: None, 4.0: 3.0}})
        assert "legend" in text

    def test_empty_series(self):
        assert "(no data)" in line_chart({"s": {}}, title="E")

    def test_log_x_requires_positive(self):
        with pytest.raises(ValueError):
            line_chart({"s": {0.0: 1.0, 1.0: 2.0}}, log_x=True)

    def test_monotone_series_renders_monotone(self):
        # The highest y must appear on an earlier line than the lowest y.
        points = {2.0**i: float(i) for i in range(6)}
        text = line_chart({"s": points}, width=40, height=10, log_x=True)
        rows = [line for line in text.splitlines() if "|" in line]
        first_marker_row = next(i for i, r in enumerate(rows) if "o" in r)
        last_marker_row = max(i for i, r in enumerate(rows) if "o" in r)
        first_col = rows[first_marker_row].index("o")
        last_col = rows[last_marker_row].index("o")
        # Rising series: top row marker is to the right of bottom row's.
        assert first_col > last_col

    def test_axis_ticks_present(self):
        text = line_chart({"s": {1.0: 5.0, 10.0: 20.0}})
        assert "20" in text
        assert "5.00" in text

    def test_flat_series_does_not_crash(self):
        text = line_chart({"s": {1.0: 3.0, 2.0: 3.0}})
        assert "legend" in text

    def test_single_point(self):
        text = line_chart({"s": {5.0: 1.5}})
        assert "legend" in text


class TestBarChart:
    def test_bars_scale_to_max(self):
        text = bar_chart({"a": 10.0, "b": 5.0}, width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_missing_values_marked(self):
        text = bar_chart({"a": 1.0, "b": None})
        assert "OOM" in text

    def test_empty(self):
        assert "(no data)" in bar_chart({}, title="E")

    def test_zero_values(self):
        text = bar_chart({"a": 0.0})
        assert "|" in text


class TestSpeedupChart:
    def test_end_to_end_with_experiment_output(self):
        from repro.core.experiments import run_fig8

        result = run_fig8(grids=(8, 4))
        text = speedup_chart(
            {
                "matmul_func": result.speedups("matmul_func"),
                "add_func": result.speedups("add_func"),
            },
            "Figure 8 shape",
        )
        assert "Figure 8 shape" in text
        assert "matmul_func" in text
