"""Tests for hybrid (per-task-type) CPU-GPU execution."""

import pytest

from repro.algorithms import KMeansWorkflow, MatmulWorkflow
from repro.core.advisor import WorkflowAdvisor
from repro.data import paper_datasets
from repro.runtime import Runtime, RuntimeConfig
from repro.tracing import parallel_task_metrics


@pytest.fixture(scope="module")
def datasets():
    return paper_datasets()


@pytest.fixture(scope="module")
def advisor():
    return WorkflowAdvisor()


def _matmul_run(datasets, **config):
    rt = Runtime(RuntimeConfig(**config))
    MatmulWorkflow(datasets["matmul_8gb"], grid=4).build(rt)
    return rt.run()


class TestPlanHybrid:
    def test_matmul_splits_by_type(self, advisor, datasets):
        plan = advisor.plan_hybrid(MatmulWorkflow(datasets["matmul_8gb"], grid=4))
        assert plan == frozenset({"matmul_func"})

    def test_oom_types_excluded(self, advisor, datasets):
        plan = advisor.plan_hybrid(MatmulWorkflow(datasets["matmul_8gb"], grid=1))
        assert plan == frozenset()

    def test_kmeans_low_complexity_included_when_worth_it(self, advisor, datasets):
        workflow = KMeansWorkflow(datasets["kmeans_10gb"], 64, n_clusters=1000)
        assert "partial_sum" in advisor.plan_hybrid(workflow)


class TestHybridExecution:
    def test_device_assignment_follows_plan(self, datasets):
        result = _matmul_run(
            datasets, use_gpu=True, gpu_task_types=frozenset({"matmul_func"})
        )
        used = {t.task_type: set() for t in result.trace.tasks}
        for task in result.trace.tasks:
            used[task.task_type].add(task.used_gpu)
        assert used["matmul_func"] == {True}
        assert used["add_func"] == {False}

    def test_hybrid_beats_both_pure_modes_on_matmul(self, datasets):
        def ptask(**config):
            result = _matmul_run(datasets, **config)
            return parallel_task_metrics(
                result.trace, {"matmul_func", "add_func"}
            ).average_parallel_time

        cpu = ptask(use_gpu=False)
        gpu = ptask(use_gpu=True)
        hybrid = ptask(use_gpu=True, gpu_task_types=frozenset({"matmul_func"}))
        assert hybrid < gpu < cpu

    def test_empty_plan_equals_cpu_mode(self, datasets):
        cpu = _matmul_run(datasets, use_gpu=False)
        hybrid = _matmul_run(datasets, use_gpu=True, gpu_task_types=frozenset())
        assert hybrid.makespan == cpu.makespan

    def test_none_plan_equals_full_gpu_mode(self, datasets):
        gpu = _matmul_run(datasets, use_gpu=True)
        hybrid = _matmul_run(datasets, use_gpu=True, gpu_task_types=None)
        assert hybrid.makespan == gpu.makespan

    def test_filter_ignored_without_gpu_mode(self, datasets):
        cpu = _matmul_run(datasets, use_gpu=False)
        filtered = _matmul_run(
            datasets, use_gpu=False, gpu_task_types=frozenset({"matmul_func"})
        )
        assert filtered.makespan == cpu.makespan

    def test_oom_precheck_respects_plan(self, datasets):
        # Full-GPU mode OOMs at grid 1; hybrid with an empty plan must not.
        rt = Runtime(RuntimeConfig(use_gpu=True, gpu_task_types=frozenset()))
        MatmulWorkflow(datasets["matmul_8gb"], grid=1).build(rt)
        result = rt.run()  # no OOM raised
        assert len(result.trace.tasks) == 1
