"""Deterministic discrete-event simulation core.

The :class:`SimEngine` keeps a priority queue of scheduled callbacks keyed
by ``(time, sequence)``.  The sequence number makes execution order fully
deterministic for events scheduled at the same simulated instant, which in
turn makes every experiment in this repository reproducible bit-for-bit.

Heap entries are flat ``[time, seq, callback, args]`` records (a ``list``
subclass), so ``heapq`` compares them element-wise in C instead of calling
a Python ``__lt__`` per comparison; cancellation nulls the callback slot
in place.  The legacy object-per-event ``reference`` kernel that this
layout replaced was removed after the batched kernel shipped as the
default; its traces are preserved bit-for-bit as recorded oracle digests
(``tests/golden/kernel_oracle_digests.json``) which the differential
harness (``tests/test_kernel_differential.py``) still pins the batched
kernel against.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised when the simulation is driven in an inconsistent way."""


class ScheduledEvent(list):
    """A callback scheduled at a simulated time (flat heap entry).

    The entry *is* its own heap record — ``[time, seq, callback, args]`` —
    so ``heapq`` orders entries with C-level list comparison: ``time``
    first, then the unique ``seq`` tie-break (``callback`` is never
    compared).  Instances are returned by :meth:`SimEngine.schedule` so
    callers can cancel pending events (e.g. a processor-sharing resource
    rescheduling the next completion when a new job arrives); cancelling
    nulls the callback slot, and the event loop skips null entries.
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        """Absolute simulated time the callback fires at."""
        return self[0]

    @property
    def seq(self) -> int:
        """Monotonic tie-break for same-time events."""
        return self[1]

    @property
    def cancelled(self) -> bool:
        """Whether the event was cancelled."""
        return self[2] is None

    def cancel(self) -> None:
        """Mark the event so the event loop skips it."""
        self[2] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self[2] is None else "pending"
        return f"ScheduledEvent(t={self[0]:.6f}, seq={self[1]}, {state})"


#: Kernel names accepted by :class:`SimEngine`.  The legacy ``reference``
#: kernel was removed; requesting it raises a pointed error.
KERNELS = ("batched",)

#: Message for attempts to construct the removed legacy kernel.
_REFERENCE_REMOVED = (
    "the 'reference' simulation kernel was removed after the batched "
    "kernel shipped as the default; its traces survive as recorded oracle "
    "digests in tests/golden/kernel_oracle_digests.json (see "
    "tests/test_kernel_differential.py). Use kernel='batched'."
)


class SimEngine:
    """A minimal, deterministic discrete-event simulator.

    Example
    -------
    >>> sim = SimEngine()
    >>> seen = []
    >>> _ = sim.schedule(2.0, seen.append, "b")
    >>> _ = sim.schedule(1.0, seen.append, "a")
    >>> sim.run()
    >>> seen
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self, kernel: str = "batched") -> None:
        if kernel not in KERNELS:
            if kernel == "reference":
                raise SimulationError(_REFERENCE_REMOVED)
            raise SimulationError(
                f"unknown simulation kernel {kernel!r}; expected one of {KERNELS}"
            )
        #: Which event-core implementation this engine runs (always
        #: ``"batched"`` now); kept as an attribute because resources and
        #: the simulated executor read it.
        self.kernel = kernel
        self._queue: list = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        #: Number of resource completion cascades currently firing
        #: callbacks with more still pending (see
        #: :meth:`~repro.sim.resources.BandwidthResource._complete_due`).
        #: While non-zero, same-instant work exists that is *not* visible
        #: in the event queue — it lives in a callback list on the Python
        #: stack — so the batched dispatcher must not drain the ready set
        #: without yielding.  Purely advisory: the engine itself never
        #: reads it.
        self.cascade_depth = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (useful for diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled events included)."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        # The entry itself carries the monotonic sequence number that
        # makes same-time orderings total and FIFO.
        event = ScheduledEvent(
            (self._now + delay, next(self._seq), callback, args)
        )
        heapq.heappush(self._queue, event)  # repro: disable=DL003
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self._now, callback, *args)

    def peek_time(self) -> float | None:
        """Time of the next pending (non-cancelled) event, ``None`` if idle.

        Used by the batched dispatcher to prove no other event shares the
        current instant before draining the ready set without yields.
        """
        queue = self._queue
        while queue:
            head = queue[0]
            if head[2] is None:
                heapq.heappop(queue)
                continue
            return head[0]
        return None

    def run(self, until: float | None = None) -> None:
        """Run events until the queue drains or simulated time passes ``until``.

        When ``until`` is given, events scheduled after it remain queued and
        the clock is advanced exactly to ``until``.
        """
        queue = self._queue
        heappop = heapq.heappop
        processed = self._processed
        while queue:
            entry = queue[0]
            callback = entry[2]
            if callback is None:
                heappop(queue)
                continue
            time = entry[0]
            if until is not None and time > until:
                break
            heappop(queue)
            self._now = time
            processed += 1
            # Write back before the callback runs: callbacks may inspect
            # the engine (or raise), and the counter must stay current.
            self._processed = processed
            callback(*entry[3])
        if until is not None and until > self._now:
            self._now = until

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        """
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            callback = entry[2]
            if callback is None:
                continue
            self._now = entry[0]
            self._processed += 1
            callback(*entry[3])
            return True
        return False


#: Backwards-compatible alias: existing call sites construct ``Simulator()``
#: and get the batched kernel.
Simulator = SimEngine
