"""Extension benchmark — §5.5.2: which findings survive a GPU generation?

The paper argues its findings transfer across dedicated-GPU generations,
while noting that faster interconnects (NVLink, CXL) "mitigate (but not
eliminate)" CPU-GPU communication.  Re-running the Figure-8 experiment on
the A100-class preset quantifies both halves of that statement:

* the compute-bound finding survives and amplifies — matmul_func speedup
  still scales with block size, now far higher;
* the transfer-bound finding is *interconnect-dependent* — the K80-era
  inversion (add_func always loses) flips to a marginal win once the bus
  is 10x faster, exactly the mitigation §5.5.2 describes.  The structural
  gap remains: add_func stays orders of magnitude behind matmul_func.
"""

from repro.algorithms import MatmulWorkflow
from repro.core.experiments.runners import run_workflow
from repro.core.report import Table, format_speedup
from repro.data import paper_datasets
from repro.hardware import minotauro, modern


def _user_code_speedups(cluster, grid):
    dataset = paper_datasets()["matmul_8gb"]
    cpu = run_workflow(MatmulWorkflow(dataset, grid=grid), use_gpu=False,
                       cluster=cluster)
    gpu = run_workflow(MatmulWorkflow(dataset, grid=grid), use_gpu=True,
                       cluster=cluster)
    out = {}
    for task_type in ("matmul_func", "add_func"):
        out[task_type] = (
            cpu.user_code[task_type].user_code
            / gpu.user_code[task_type].user_code
        )
    return out


def test_findings_survive_a_gpu_generation(once):
    grids = (16, 8, 4)

    def measure():
        return {
            label: {grid: _user_code_speedups(cluster, grid) for grid in grids}
            for label, cluster in (("K80", minotauro()), ("A100", modern()))
        }

    results = once(measure)
    table = Table(
        title="Figure 8 across GPU generations (user-code speedups)",
        headers=("grid", "K80 matmul", "K80 add", "A100 matmul", "A100 add"),
    )
    for grid in grids:
        table.add_row(
            f"{grid}x{grid}",
            format_speedup(results["K80"][grid]["matmul_func"]),
            format_speedup(results["K80"][grid]["add_func"]),
            format_speedup(results["A100"][grid]["matmul_func"]),
            format_speedup(results["A100"][grid]["add_func"]),
        )
    print()
    print(table.render())

    for label in ("K80", "A100"):
        matmul = [results[label][grid]["matmul_func"] for grid in grids]
        # Finding 1 survives both generations: matmul_func speedup scales
        # with block size.
        assert matmul == sorted(matmul)
    # Finding 2 on K80-class hardware: add_func never profits.
    assert all(results["K80"][g]["add_func"] < 1.0 for g in grids)
    # The NVLink-class bus mitigates the transfer bottleneck: add_func
    # turns marginally profitable...
    assert all(results["A100"][g]["add_func"] > 1.0 for g in grids)
    # ... but the structural gap between the task types remains huge.
    for grid in grids:
        assert (
            results["A100"][grid]["matmul_func"]
            > 20 * results["A100"][grid]["add_func"]
        )
    # And the device generation amplifies the compute-bound speedups.
    assert results["A100"][4]["matmul_func"] > 3 * results["K80"][4]["matmul_func"]
