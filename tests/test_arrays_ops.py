"""Tests for the task-based distributed array operations."""

import numpy as np
import pytest

from repro.arrays import DistributedArray
from repro.arrays.ops import (
    add,
    center,
    column_means,
    elementwise_cost,
    reduction_cost,
    scale,
    transpose,
)
from repro.data import Blocking, DatasetSpec, GridSpec
from repro.data.generator import generate_matrix
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.runtime import Backend


def _array(rt, rows=24, cols=12, k=3, l=2, name="A"):
    blocking = Blocking.from_grid(
        DatasetSpec(f"ops_{name}", rows=rows, cols=cols), GridSpec(k=k, l=l)
    )
    return DistributedArray.create(rt, blocking, name=name, materialize=True)


def _in_process():
    return Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))


class TestRealExecution:
    def test_scale(self):
        rt = _in_process()
        a = _array(rt)
        refs = scale(rt, a, 2.5)
        result = rt.run()
        got = DistributedArray.assemble(refs, result)
        np.testing.assert_allclose(got, a.gather(result) * 2.5)

    def test_add(self):
        rt = _in_process()
        a = _array(rt, name="A")
        b = _array(rt, name="B")
        refs = add(rt, a, b)
        result = rt.run()
        got = DistributedArray.assemble(refs, result)
        np.testing.assert_allclose(got, a.gather(result) + b.gather(result))

    def test_add_shape_mismatch(self):
        rt = _in_process()
        a = _array(rt, rows=24, name="A")
        b = _array(rt, rows=12, k=3, name="B")
        with pytest.raises(ValueError, match="share shape"):
            add(rt, a, b)

    def test_transpose(self):
        rt = _in_process()
        a = _array(rt)
        refs = transpose(rt, a)
        result = rt.run()
        got = DistributedArray.assemble(refs, result)
        np.testing.assert_allclose(got, a.gather(result).T)

    def test_column_means(self):
        rt = _in_process()
        a = _array(rt)
        means_ref = column_means(rt, a)
        result = rt.run()
        expected = generate_matrix(a.blocking.dataset).mean(axis=0)
        np.testing.assert_allclose(result.value_of(means_ref), expected)

    def test_column_means_with_ragged_blocks(self):
        rt = _in_process()
        blocking = Blocking.from_grid(
            DatasetSpec("ragged", rows=25, cols=4), GridSpec(k=4, l=1)
        )
        a = DistributedArray.create(rt, blocking, materialize=True)
        means_ref = column_means(rt, a)
        result = rt.run()
        expected = generate_matrix(blocking.dataset).mean(axis=0)
        np.testing.assert_allclose(result.value_of(means_ref), expected)

    def test_center(self):
        rt = _in_process()
        a = _array(rt)
        means_ref = column_means(rt, a)
        refs = center(rt, a, means_ref)
        result = rt.run()
        got = DistributedArray.assemble(refs, result)
        assert np.allclose(got.mean(axis=0), 0.0, atol=1e-12)

    def test_ops_compose_into_one_dag(self):
        rt = _in_process()
        a = _array(rt)
        means_ref = column_means(rt, a)
        centered = center(rt, a, means_ref)
        assert rt.graph.height >= 3  # colsum -> merge -> center
        result = rt.run()
        assert len(result.trace.tasks) == rt.graph.num_tasks


class TestCosts:
    def test_elementwise_memory_bound(self):
        cost = elementwise_cost(1000, 1000, flops_per_element=1.0)
        assert cost.arithmetic_intensity < 0.1
        assert cost.serial_flops == 0

    def test_reduction_output_small(self):
        cost = reduction_cost(1000, 100, out_elements=101)
        assert cost.output_bytes == 8 * 101
        assert cost.input_bytes == 8 * 1000 * 100

    def test_simulated_execution_with_ops(self):
        rt = Runtime(RuntimeConfig(use_gpu=True))
        blocking = Blocking.from_grid(
            DatasetSpec("simops", rows=1_000_000, cols=100), GridSpec(k=16, l=1)
        )
        a = DistributedArray.create(rt, blocking)
        means_ref = column_means(rt, a)
        center(rt, a, means_ref)
        result = rt.run()
        assert result.makespan > 0
        assert len(result.trace.tasks) == 16 + 1 + 16
