#!/usr/bin/env python
"""Record (or check) the kernel-differential oracle digests.

Runs every cell of the kernel corpus (``tests/kernel_corpus.py``) and
writes the trace digests to ``tests/golden/kernel_oracle_digests.json``.

The checked-in digests were originally recorded under the legacy
``reference`` event kernel, immediately before its removal; they are the
frozen oracle the batched kernel is differentially tested against.
Re-record them only when a change is **meant** to alter execution
behaviour — never to paper over an unexplained digest mismatch:

    PYTHONPATH=src python scripts/record_kernel_oracle.py

``--check`` verifies instead of writing (used by CI):

    PYTHONPATH=src python scripts/record_kernel_oracle.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

FIXTURE_PATH = REPO_ROOT / "tests" / "golden" / "kernel_oracle_digests.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify fixtures instead of rewriting them",
    )
    args = parser.parse_args(argv)

    from tests.kernel_corpus import corpus_cases, run_digest

    digests = {}
    for name, (make_config, workflow) in corpus_cases().items():
        digests[name] = run_digest(make_config(), workflow)
        print(f"  {name}: {digests[name][:16]}…")

    if args.check:
        recorded = json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))
        mismatched = [
            name
            for name, digest in digests.items()
            if recorded.get("digests", {}).get(name) != digest
        ]
        missing = sorted(set(recorded.get("digests", {})) - set(digests))
        if mismatched or missing:
            print(f"MISMATCH: {mismatched or '-'} missing: {missing or '-'}")
            return 1
        print(f"OK: {len(digests)} cells match {FIXTURE_PATH}")
        return 0

    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(
        json.dumps(
            {"schema": "repro-kernel-oracle/1", "digests": digests},
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"wrote {len(digests)} digests to {FIXTURE_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
