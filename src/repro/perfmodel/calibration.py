"""Calibration rationale for the effective hardware constants.

The paper measured a real cluster; we simulate one.  Absolute seconds are
therefore not comparable, but every constant in
:func:`repro.hardware.specs.minotauro` was chosen so the *relationships* the
paper reports hold.  This module records the reasoning so future changes are
deliberate, and exposes the numbers programmatically for the ablation
benchmarks.

Calibration targets (all from the paper):

* Figure 1 — distributed K-means, 10 GB, 256 tasks: parallel-fraction GPU
  speedup ~5.7x, user-code speedup ~1.2x, *negative* speedup (~-1.2x) once
  tasks are distributed (only 32 GPUs vs 128 cores, plus data movement).
* Figure 8 — matmul_func user-code speedup scales with block size up to
  ~21x; add_func (O(N) work, O(N) bytes) is *slower* on GPU at every block
  size because PCIe transfer dominates its tiny parallel fraction.
* Figure 9a — K-means user-code speedup grows with #clusters (quadratic
  FLOPs vs sub-quadratic serial fraction) and stays below the
  parallel-fraction speedup ceiling.
* Figures 7/10 — (de-)serialization dominates once tasks are distributed;
  local disk beats shared disk; the scheduling policy matters mostly on
  shared disk and for cheap tasks (K-means).

Derived constants:

* ``CpuSpec.flops_per_core = 16 GFLOP/s`` — effective dgemm rate of one
  Xeon E5-2630 core (AVX, ~2.4 GHz).
* ``GpuSpec.flops = 420 GFLOP/s`` — effective double-precision rate of one
  K80 GK210 through dislib's CuPy path.  The ratio 420/16 = 26.25x is the
  asymptotic compute-bound device speedup; with the occupancy curve it gives
  ~21x at the 2048 MB Matmul block, matching Figure 8.
* ``GpuSpec.saturation_items = 1e7`` — half-occupancy kernel size.  A
  2048 MB block (2.7e8 elements) reaches ~96% occupancy; a 32 MB block
  (4e6 elements) only ~29%, reproducing the fine-grained speedup collapse.
* ``InterconnectSpec.bandwidth_per_transfer = 2 GB/s`` — effective PCIe
  bandwidth per concurrent transfer with four K80 devices sharing the host
  bridge.  At this rate add_func's transfer time exceeds its CPU compute
  time at every block size (the Figure 8 inversion), while matmul_func's
  O(N^3) compute amortises it.
* ``CpuSpec.serialization_bandwidth = 1.2 GB/s`` — pickle+NumPy decode rate;
  together with the disk models it makes (de-)serialization the dominant
  distributed-mode overhead, as in §5.1.2.
* ``DiskSpec(shared) = 2 GB/s read / 1.5 GB/s write`` shared by the whole
  cluster vs ``500/400 MB/s`` per node locally: 8 local disks out-run GPFS,
  so local storage wins end-to-end (§5.3) even though a single stream is
  faster on GPFS.
* ``ClusterSpec.scheduling_latency`` — per-task dispatch cost of the two
  PyCOMPSs policies (task generation order ~1 ms, data locality ~4 ms); the
  locality policy pays more per decision but avoids remote reads on local
  storage, reproducing O5/O6.
"""

from __future__ import annotations

from repro.hardware.specs import minotauro

#: Mapping of constant name -> (value, justification) for programmatic
#: access from ablation benchmarks and documentation builds.
CALIBRATION_NOTES: dict[str, tuple[float, str]] = {
    "cpu.flops_per_core": (
        16.0e9,
        "effective dgemm FLOP/s of one Xeon E5-2630 core",
    ),
    "gpu.flops": (
        420.0e9,
        "effective FLOP/s of one K80 GK210 via CuPy; 26.25x over one core",
    ),
    "gpu.saturation_items": (
        1.0e7,
        "half-occupancy kernel size; makes device speedup scale with block size",
    ),
    "pcie.bandwidth_per_transfer": (
        2.0e9,
        "effective per-transfer PCIe rate with 4 devices per host bridge",
    ),
    "cpu.serialization_bandwidth": (
        1.2e9,
        "NumPy/pickle (de-)serialization rate of one core",
    ),
    "shared_disk.read_bandwidth": (
        2.0e9,
        "aggregate GPFS read rate, shared by all nodes",
    ),
    "local_disk.read_bandwidth": (
        500.0e6,
        "per-node local disk read rate (8 nodes aggregate to 4 GB/s)",
    ),
    "scheduling_latency.generation_order": (
        1.0e-3,
        "per-task dispatch latency of the FIFO policy",
    ),
    "scheduling_latency.data_locality": (
        4.0e-3,
        "per-task dispatch latency of the locality-aware policy",
    ),
}


def verify_calibration_consistency() -> list[str]:
    """Cross-check that the notes match the Minotauro preset.

    Returns a list of human-readable mismatches (empty when consistent);
    used by the test suite to keep documentation and code in sync.
    """
    spec = minotauro()
    actual = {
        "cpu.flops_per_core": spec.node.cpu.flops_per_core,
        "gpu.flops": spec.node.gpu.flops,
        "gpu.saturation_items": spec.node.gpu.saturation_items,
        "pcie.bandwidth_per_transfer": spec.node.interconnect.bandwidth_per_transfer,
        "cpu.serialization_bandwidth": spec.node.cpu.serialization_bandwidth,
        "shared_disk.read_bandwidth": spec.shared_disk.read_bandwidth,
        "local_disk.read_bandwidth": spec.node.local_disk.read_bandwidth,
        "scheduling_latency.generation_order": spec.scheduling_latency["generation_order"],
        "scheduling_latency.data_locality": spec.scheduling_latency["data_locality"],
    }
    mismatches = []
    for key, (documented, _why) in CALIBRATION_NOTES.items():
        if actual.get(key) != documented:
            mismatches.append(
                f"{key}: documented {documented!r} but spec has {actual.get(key)!r}"
            )
    return mismatches
