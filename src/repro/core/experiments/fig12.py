"""Figure 12 — generalizability: Matmul FMA (§5.5.1).

The Fused Multiply-Add implementation of matrix multiplication is run with
the same parameters as the Figure 8 experiment.  Because the per-task cost
profile matches ``matmul_func`` (O(N^3) compute, three resident blocks),
the user-code speedup, parallel fraction, and CPU-GPU communication trends
repeat — the paper's evidence that the analysis transfers across
implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms import MatmulFmaWorkflow
from repro.core.experiments.engine import SweepEngine, cells_product
from repro.core.experiments.runners import RunMetrics, speedup
from repro.core.report import Table, format_seconds, format_speedup
from repro.data import paper_datasets

FIG12_GRIDS = (16, 8, 4, 2, 1)


@dataclass
class Fig12Point:
    """fma_func stage times at one block size."""

    block_mb: float
    grid: int
    cpu: RunMetrics
    gpu: RunMetrics

    @property
    def status(self) -> str:
        """'ok' unless either processor run hit an OOM condition."""
        for metrics in (self.cpu, self.gpu):
            if not metrics.ok:
                return metrics.status
        return "ok"

    @property
    def user_code_speedup(self) -> float | None:
        """GPU-over-CPU user-code speedup of fma_func."""
        if not (self.cpu.ok and self.gpu.ok):
            return None
        return speedup(
            self.cpu.user_code["fma_func"].user_code,
            self.gpu.user_code["fma_func"].user_code,
        )

    def stage(self, use_gpu: bool, attr: str) -> float | None:
        """An averaged fma_func stage duration."""
        metrics = self.gpu if use_gpu else self.cpu
        if not metrics.ok:
            return None
        return getattr(metrics.user_code["fma_func"], attr)


@dataclass
class Fig12Result:
    """The Matmul FMA sweep."""

    dataset: str
    points: list[Fig12Point] = field(default_factory=list)

    def speedups(self) -> dict[float, float | None]:
        """block MB -> user-code speedup."""
        return {p.block_mb: p.user_code_speedup for p in self.points}

    def render(self) -> str:
        """Figure 12 as a table."""
        table = Table(
            title=f"Figure 12: Matmul FMA task user code ({self.dataset})",
            headers=(
                "block MB",
                "Usr.Code speedup",
                "P.Frac CPU",
                "P.Frac GPU",
                "CPU-GPU comm",
                "status",
            ),
        )
        for p in self.points:
            table.add_row(
                f"{p.block_mb:.0f}",
                format_speedup(p.user_code_speedup),
                format_seconds(p.stage(False, "parallel_fraction")),
                format_seconds(p.stage(True, "parallel_fraction")),
                format_seconds(p.stage(True, "cpu_gpu_comm")),
                p.status,
            )
        return table.render()


def run_fig12(
    dataset_key: str = "matmul_8gb",
    grids: tuple[int, ...] = FIG12_GRIDS,
    engine: SweepEngine | None = None,
) -> Fig12Result:
    """Sweep Matmul FMA block sizes with the Figure 8 parameters."""
    engine = engine if engine is not None else SweepEngine.serial()
    dataset = paper_datasets()[dataset_key]
    result = Fig12Result(dataset=dataset_key)
    block_mbs = [MatmulFmaWorkflow(dataset, grid=grid).block_mb for grid in grids]
    results = engine.run_cells(
        cells_product("matmul_fma", grids, dataset_key=dataset_key)
    )
    for index, (grid, block_mb) in enumerate(zip(grids, block_mbs)):
        result.points.append(
            Fig12Point(
                block_mb=block_mb,
                grid=grid,
                cpu=results[2 * index],
                gpu=results[2 * index + 1],
            )
        )
    return result
