"""Tests for the blocked Matmul workflows (dislib-style and FMA)."""

import numpy as np
import pytest

from repro.algorithms import MatmulFmaWorkflow, MatmulWorkflow
from repro.algorithms.matmul import add_cost, matmul_cost
from repro.algorithms.matmul_fma import fma_cost
from repro.arrays import DistributedArray
from repro.data import DatasetSpec, paper_datasets
from repro.data.generator import generate_matrix
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.runtime import Backend


def _tiny(rows=48):
    return DatasetSpec("tiny", rows=rows, cols=rows)


class TestMatmulCorrectness:
    @pytest.mark.parametrize("grid", [1, 2, 3, 4])
    def test_matches_numpy(self, grid):
        dataset = _tiny(48)
        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        a, b, c_refs = MatmulWorkflow(dataset, grid=grid).build(rt, materialize=True)
        result = rt.run()
        got = DistributedArray.assemble(c_refs, result)
        full = generate_matrix(dataset)
        np.testing.assert_allclose(got, full @ full, rtol=1e-10)

    def test_rejects_rectangular_grid(self):
        from repro.data import GridSpec

        with pytest.raises(ValueError):
            MatmulWorkflow(_tiny(), grid=GridSpec(k=2, l=4))


class TestMatmulDag:
    def test_task_counts_match_figure_6b(self):
        # 4x4 grid: 64 matmul_func + 48 add_func = 112 tasks.
        rt = Runtime(RuntimeConfig())
        MatmulWorkflow(_tiny(64), grid=4).build(rt)
        names = [t.name for t in rt.graph.tasks()]
        assert names.count("matmul_func") == 64
        assert names.count("add_func") == 48

    def test_wide_and_shallow(self):
        rt = Runtime(RuntimeConfig())
        MatmulWorkflow(_tiny(64), grid=4).build(rt)
        assert rt.graph.width > rt.graph.height

    def test_single_block_grid_has_one_task(self):
        rt = Runtime(RuntimeConfig())
        MatmulWorkflow(_tiny(64), grid=1).build(rt)
        assert rt.graph.num_tasks == 1
        assert rt.graph.tasks()[0].name == "matmul_func"

    def test_add_tree_height_is_logarithmic(self):
        rt = Runtime(RuntimeConfig())
        MatmulWorkflow(_tiny(64), grid=8).build(rt)
        # 8 partials per C block -> 1 matmul level + 3 add levels.
        assert rt.graph.height == 4


class TestMatmulCosts:
    def test_matmul_cost_cubic(self):
        small = matmul_cost(100, 100, 100)
        large = matmul_cost(200, 200, 200)
        assert large.parallel_flops == pytest.approx(8 * small.parallel_flops)

    def test_add_cost_linear(self):
        small = add_cost(100, 100)
        large = add_cost(200, 200)
        assert large.parallel_flops == pytest.approx(4 * small.parallel_flops)

    def test_complexity_gap_is_orders_of_magnitude(self):
        n = 4096
        assert matmul_cost(n, n, n).parallel_flops / add_cost(n, n).parallel_flops > 1e3

    def test_gpu_memory_is_three_blocks(self):
        # The paper: Matmul needs 3x the block size resident (§5.3).
        n = 1024
        cost = matmul_cost(n, n, n)
        assert cost.gpu_memory_bytes == 3 * 8 * n * n

    def test_matmul_fully_parallel(self):
        assert matmul_cost(64, 64, 64).serial_flops == 0
        assert add_cost(64, 64).serial_flops == 0

    def test_paper_8gb_block_sizes(self):
        dataset = paper_datasets()["matmul_8gb"]
        sizes = {
            grid: MatmulWorkflow(dataset, grid=grid).blocking.block_bytes / 2**20
            for grid in (16, 8, 4, 2, 1)
        }
        assert sizes == {16: 32, 8: 128, 4: 512, 2: 2048, 1: 8192}


class TestMatmulFma:
    @pytest.mark.parametrize("grid", [1, 2, 4])
    def test_matches_numpy(self, grid):
        dataset = _tiny(32)
        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        a, b, c_refs = MatmulFmaWorkflow(dataset, grid=grid).build(rt, materialize=True)
        result = rt.run()
        got = DistributedArray.assemble(c_refs, result)
        full = generate_matrix(dataset)
        np.testing.assert_allclose(got, full @ full, rtol=1e-10)

    def test_fma_and_matmul_agree(self):
        dataset = _tiny(32)
        results = []
        for workflow_cls in (MatmulWorkflow, MatmulFmaWorkflow):
            rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
            a, b, c_refs = workflow_cls(dataset, grid=2).build(rt, materialize=True)
            results.append(DistributedArray.assemble(c_refs, rt.run()))
        np.testing.assert_allclose(results[0], results[1], rtol=1e-10)

    def test_chain_dag_is_deeper_than_tree(self):
        rt_fma = Runtime(RuntimeConfig())
        MatmulFmaWorkflow(_tiny(64), grid=8).build(rt_fma)
        rt_mm = Runtime(RuntimeConfig())
        MatmulWorkflow(_tiny(64), grid=8).build(rt_mm)
        assert rt_fma.graph.height > rt_mm.graph.height

    def test_fma_cost_close_to_matmul_cost(self):
        n = 2048
        ratio = fma_cost(n, n, n).parallel_flops / matmul_cost(n, n, n).parallel_flops
        assert 1.0 <= ratio < 1.01
