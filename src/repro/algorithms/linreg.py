"""Distributed linear regression via normal equations.

The paper motivates Matmul as "a fundamental operation in many ML/DL
techniques, including LLMs, PCA, SVD, linear regression" (§4.1).  This
workload makes that concrete: ordinary least squares over a row-chunked
design matrix, solved through the normal equations

    beta = (X^T X)^-1  X^T y

Per row block ``X_i`` (``m x n``) and target block ``y_i`` (``m x 1``),
one ``gram_func`` task computes the partial Gram matrix ``X_i^T X_i``
(fully parallel, O(m n^2)) and one ``xty_func`` task the partial moment
vector ``X_i^T y_i`` (fully parallel, O(m n)); two serial reductions and
a tiny ``n x n`` solve finish on the master.  The task mix — a
compute-heavy fully parallel type next to a memory-bound one — sits
between the paper's Matmul extremes, like ``matmul_func``/``add_func`` at
a different complexity ratio.
"""

from __future__ import annotations

import numpy as np

from repro.data import Blocking, DatasetSpec, GridSpec
from repro.perfmodel import TaskCost
from repro.runtime import DataRef, Runtime, task
from repro.arrays import DistributedArray

_ELEM = 8


@task(returns=1, name="gram_func")
def gram_func(block: np.ndarray) -> np.ndarray:
    """Partial Gram matrix ``X_i^T X_i`` of one row block."""
    return block.T @ block


@task(returns=1, name="xty_func")
def xty_func(block: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Partial moment vector ``X_i^T y_i`` of one row block."""
    return block.T @ targets


@task(returns=1, name="reduce_sum")
def reduce_sum(*parts: np.ndarray) -> np.ndarray:
    """Sum partial matrices/vectors (serial reduction on the master)."""
    return np.sum(parts, axis=0)


@task(returns=1, name="solve_normal")
def solve_normal(gram: np.ndarray, moment: np.ndarray) -> np.ndarray:
    """Solve the (small, dense) normal equations."""
    return np.linalg.solve(gram, moment)


def gram_cost(m: int, n: int) -> TaskCost:
    """Cost of one ``gram_func``: O(m n^2) compute over O(m n) bytes."""
    flops = float(m) * n * n
    in_bytes = _ELEM * m * n
    out_bytes = _ELEM * n * n
    touched = in_bytes + out_bytes
    return TaskCost(
        serial_flops=0.0,
        parallel_flops=flops,
        parallel_items=float(m * n),
        arithmetic_intensity=flops / touched,
        input_bytes=in_bytes,
        output_bytes=out_bytes,
        host_device_bytes=in_bytes + out_bytes,
        gpu_memory_bytes=in_bytes + out_bytes,
        host_memory_bytes=2 * (in_bytes + out_bytes),
    )


def xty_cost(m: int, n: int) -> TaskCost:
    """Cost of one ``xty_func``: O(m n) compute, memory-bound."""
    flops = 2.0 * m * n
    in_bytes = _ELEM * (m * n + m)
    out_bytes = _ELEM * n
    touched = in_bytes + out_bytes
    return TaskCost(
        serial_flops=0.0,
        parallel_flops=flops,
        parallel_items=float(m * n),
        arithmetic_intensity=flops / touched,
        input_bytes=in_bytes,
        output_bytes=out_bytes,
        host_device_bytes=in_bytes + out_bytes,
        gpu_memory_bytes=in_bytes + out_bytes,
        host_memory_bytes=2 * in_bytes,
    )


def _serial_cost(in_bytes: int, out_bytes: int, flops: float) -> TaskCost:
    return TaskCost(
        serial_flops=flops,
        parallel_flops=0.0,
        parallel_items=0.0,
        arithmetic_intensity=0.0,
        input_bytes=in_bytes,
        output_bytes=out_bytes,
        host_device_bytes=0,
        gpu_memory_bytes=0,
        host_memory_bytes=4 * in_bytes,
    )


class LinearRegressionWorkflow:
    """Builds the OLS workflow over a row-chunked design matrix."""

    name = "linear_regression"
    parallel_task_types = frozenset({"gram_func", "xty_func"})
    primary_task_type = "gram_func"

    def __init__(self, dataset: DatasetSpec, grid_rows: int) -> None:
        self.blocking = Blocking.from_grid(dataset, GridSpec(k=grid_rows, l=1))

    @property
    def block_mb(self) -> float:
        """Block size label for reports."""
        return self.blocking.block_mb

    def targets(self) -> np.ndarray:
        """Deterministic synthetic targets (linear model + noise)."""
        from repro.data.generator import generate_matrix

        data = generate_matrix(self.blocking.dataset)
        rng = np.random.default_rng(self.blocking.dataset.seed + 2)
        true_beta = rng.random(self.blocking.dataset.cols)
        noise = rng.normal(scale=0.01, size=self.blocking.dataset.rows)
        return data @ true_beta + noise

    def build(
        self, runtime: Runtime, materialize: bool = False
    ) -> tuple[DistributedArray, DataRef]:
        """Submit all tasks; returns (design matrix array, beta ref)."""
        blocking = self.blocking
        m, n = blocking.block.m, blocking.block.n
        k = blocking.grid.k
        data = DistributedArray.create(
            runtime, blocking, name="X", materialize=materialize
        )
        target_values = self.targets() if materialize else None
        target_refs = []
        for i in range(k):
            rows = blocking.block_rows(i)
            value = None
            if target_values is not None:
                start = i * m
                value = target_values[start : start + rows]
            target_refs.append(
                runtime.register_input(
                    size_bytes=_ELEM * rows, name=f"y[{i}]", value=value
                )
            )
        g_cost = gram_cost(m, n)
        v_cost = xty_cost(m, n)
        gram_reduce_cost = _serial_cost(
            in_bytes=_ELEM * k * n * n,
            out_bytes=_ELEM * n * n,
            flops=float(k * n * n),
        )
        moment_reduce_cost = _serial_cost(
            in_bytes=_ELEM * k * n, out_bytes=_ELEM * n, flops=float(k * n)
        )
        solve_cost = _serial_cost(
            in_bytes=_ELEM * (n * n + n),
            out_bytes=_ELEM * n,
            flops=float(n**3),
        )
        with runtime:
            grams = [gram_func(block, _cost=g_cost) for block in data.blocks()]
            moments = [
                xty_func(block, target, _cost=v_cost)
                for block, target in zip(data.blocks(), target_refs)
            ]
            gram = reduce_sum(*grams, _cost=gram_reduce_cost)
            moment = reduce_sum(*moments, _cost=moment_reduce_cost)
            beta = solve_normal(gram, moment, _cost=solve_cost)
        return data, beta

    def task_costs(self) -> dict[str, TaskCost]:
        """Per-task-type costs for analytic experiments."""
        m, n = self.blocking.block.m, self.blocking.block.n
        return {"gram_func": gram_cost(m, n), "xty_func": xty_cost(m, n)}
