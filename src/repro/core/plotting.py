"""ASCII chart rendering for experiment results.

The paper's artefacts are figures; the tables produced by
:mod:`repro.core.report` carry the numbers, and this module adds terminal
charts for the *shapes*: line charts for speedup-vs-block-size curves
(Figures 7, 8, 9a, 12) and grouped bar charts for the storage/scheduler
comparison (Figure 10).  Pure text, no plotting stack.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_MARKERS = "ox+*#@%&"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000 or magnitude < 0.01:
        return f"{value:.1e}"
    if magnitude >= 10:
        return f"{value:.0f}"
    return f"{value:.2f}"


def line_chart(
    series: Mapping[str, Mapping[float, float | None]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    y_label: str = "",
) -> str:
    """Render one or more (x -> y) series as an ASCII line chart.

    ``None`` y-values (e.g. OOM points) are skipped.  X positions are
    scaled linearly (or logarithmically with ``log_x``, handy for the
    paper's power-of-two block sizes); each series gets its own marker.
    """
    cleaned = {
        label: {x: y for x, y in points.items() if y is not None}
        for label, points in series.items()
    }
    cleaned = {label: pts for label, pts in cleaned.items() if pts}
    if not cleaned:
        return f"{title}\n(no data)"
    xs = sorted({x for pts in cleaned.values() for x in pts})
    ys = [y for pts in cleaned.values() for y in pts.values()]
    if log_x and min(xs) <= 0:
        raise ValueError("log_x requires positive x values")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    def x_col(x: float) -> int:
        if log_x:
            position = (math.log(x) - math.log(x_lo)) / (
                math.log(x_hi) - math.log(x_lo)
            )
        else:
            position = (x - x_lo) / (x_hi - x_lo)
        return round(position * (width - 1))

    def y_row(y: float) -> int:
        position = (y - y_lo) / (y_hi - y_lo)
        return (height - 1) - round(position * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    for index, (label, points) in enumerate(cleaned.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in points.items():
            grid[y_row(y)][x_col(x)] = marker
    lines = []
    if title:
        lines.append(title)
    axis_width = max(len(_format_tick(y_hi)), len(_format_tick(y_lo)))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            tick = _format_tick(y_hi)
        elif row_index == height - 1:
            tick = _format_tick(y_lo)
        else:
            tick = ""
        lines.append(f"{tick.rjust(axis_width)} |{''.join(row)}")
    lines.append(" " * axis_width + " +" + "-" * width)
    left = _format_tick(x_lo)
    right = _format_tick(x_hi)
    pad = width - len(left) - len(right)
    lines.append(" " * (axis_width + 2) + left + " " * max(pad, 1) + right)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}"
        for i, label in enumerate(cleaned)
    )
    lines.append(f"legend: {legend}")
    if y_label:
        lines.append(f"y: {y_label}")
    return "\n".join(lines)


def bar_chart(
    bars: Mapping[str, float | None],
    title: str = "",
    width: int = 50,
    missing_label: str = "OOM",
) -> str:
    """Render labelled horizontal bars; ``None`` values render as missing."""
    if not bars:
        return f"{title}\n(no data)"
    values = [v for v in bars.values() if v is not None]
    top = max(values) if values else 1.0
    if top <= 0:
        top = 1.0
    label_width = max(len(label) for label in bars)
    lines = [title] if title else []
    for label, value in bars.items():
        if value is None:
            lines.append(f"{label.rjust(label_width)} | {missing_label}")
            continue
        filled = round(value / top * width)
        lines.append(
            f"{label.rjust(label_width)} |{'#' * filled}"
            f" {_format_tick(value)}"
        )
    return "\n".join(lines)


def speedup_chart(
    speedups_by_block: Mapping[str, Mapping[float, float | None]],
    title: str,
) -> str:
    """A line chart preset for the figures' speedup-vs-block-size panels."""
    return line_chart(
        speedups_by_block,
        title=title,
        log_x=True,
        y_label="GPU speedup over CPU (x)",
    )


def series_table_and_chart(
    table_text: str,
    series: Mapping[str, Mapping[float, float | None]],
    chart_title: str,
) -> str:
    """Convenience: a rendered table followed by its chart."""
    return table_text + "\n\n" + speedup_chart(series, chart_title)


def ensure_monotone_axis(xs: Sequence[float]) -> list[float]:
    """Sorted distinct x positions (helper for chart callers)."""
    return sorted(set(xs))
