"""The factor/parameter framework of Table 1.

Following Jain's method (§4), every variable that affects measured
performance and has several alternatives is a *factor*.  The paper
classifies its factors into four dimensions — task algorithm, dataset,
resources, and system — and notes which system functions each factor
stresses (device speedup, storage I/O, network I/O, CPU-GPU data transfer,
task scheduling).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.report import Table


class Dimension(str, enum.Enum):
    """The four factor dimensions of Table 1."""

    TASK_ALGORITHM = "task_algorithm"
    DATASET = "dataset"
    RESOURCES = "resources"
    SYSTEM = "system"

    @property
    def label(self) -> str:
        """Human-readable dimension name."""
        return {
            Dimension.TASK_ALGORITHM: "Task algorithm",
            Dimension.DATASET: "Dataset",
            Dimension.RESOURCES: "Resources",
            Dimension.SYSTEM: "System",
        }[self]


class SystemFunction(str, enum.Enum):
    """System functions a factor can affect (footnote of Table 1)."""

    DEVICE_SPEEDUP = "device_speedup"
    STORAGE_IO = "storage_io"
    NETWORK_IO = "network_io"
    CPU_GPU_TRANSFER = "cpu_gpu_data_transfer"
    TASK_SCHEDULING = "task_scheduling"


@dataclass(frozen=True)
class Factor:
    """One factor with the parameters it determines."""

    name: str
    dimension: Dimension
    parameters: tuple[str, ...]
    affects: frozenset[SystemFunction]
    description: str = ""


#: Table 1 verbatim: the paper's eight factors.
TABLE1_FACTORS: tuple[Factor, ...] = (
    Factor(
        name="block dimension",
        dimension=Dimension.TASK_ALGORITHM,
        parameters=("block size", "grid dimension", "DAG shape"),
        affects=frozenset(
            {
                SystemFunction.DEVICE_SPEEDUP,
                SystemFunction.STORAGE_IO,
                SystemFunction.NETWORK_IO,
                SystemFunction.CPU_GPU_TRANSFER,
                SystemFunction.TASK_SCHEDULING,
            }
        ),
        description="Elements per block; the task- vs thread-parallelism knob.",
    ),
    Factor(
        name="computational complexity",
        dimension=Dimension.TASK_ALGORITHM,
        parameters=(),
        affects=frozenset({SystemFunction.DEVICE_SPEEDUP}),
        description="Per-task work growth (e.g. O(N^3) matmul_func vs O(N) add_func).",
    ),
    Factor(
        name="parallel fraction",
        dimension=Dimension.TASK_ALGORITHM,
        parameters=(),
        affects=frozenset({SystemFunction.DEVICE_SPEEDUP}),
        description="Share of the task user code that is thread-parallelisable.",
    ),
    Factor(
        name="algorithm-specific parameter",
        dimension=Dimension.TASK_ALGORITHM,
        parameters=(),
        affects=frozenset({SystemFunction.DEVICE_SPEEDUP}),
        description="E.g. the number of clusters in K-means.",
    ),
    Factor(
        name="dataset dimension",
        dimension=Dimension.DATASET,
        parameters=("dataset size",),
        affects=frozenset(
            {
                SystemFunction.DEVICE_SPEEDUP,
                SystemFunction.STORAGE_IO,
                SystemFunction.NETWORK_IO,
                SystemFunction.CPU_GPU_TRANSFER,
                SystemFunction.TASK_SCHEDULING,
            }
        ),
        description="Rows x columns of the input matrix.",
    ),
    Factor(
        name="processor type",
        dimension=Dimension.RESOURCES,
        parameters=("maximum #CPU cores available depending on the processor type",),
        affects=frozenset({SystemFunction.DEVICE_SPEEDUP}),
        description="CPU-based vs GPU-accelerated task execution.",
    ),
    Factor(
        name="storage architecture",
        dimension=Dimension.RESOURCES,
        parameters=(),
        affects=frozenset({SystemFunction.STORAGE_IO}),
        description="Node-local disks vs shared (GPFS) file system.",
    ),
    Factor(
        name="scheduling policy",
        dimension=Dimension.SYSTEM,
        parameters=(),
        affects=frozenset(
            {SystemFunction.NETWORK_IO, SystemFunction.TASK_SCHEDULING}
        ),
        description="Task generation order vs data locality.",
    ),
)

_AFFECT_MARKS = {
    SystemFunction.DEVICE_SPEEDUP: "speedup",
    SystemFunction.STORAGE_IO: "storage",
    SystemFunction.NETWORK_IO: "network",
    SystemFunction.CPU_GPU_TRANSFER: "transfer",
    SystemFunction.TASK_SCHEDULING: "sched",
}


def factors_table() -> Table:
    """Table 1 as a renderable table."""
    table = Table(
        title="Table 1: Factors and parameters",
        headers=("Dimension", "Factor", "Parameters", "Affects"),
    )
    for factor in TABLE1_FACTORS:
        marks = ",".join(
            _AFFECT_MARKS[fn] for fn in _AFFECT_MARKS if fn in factor.affects
        )
        table.add_row(
            factor.dimension.label,
            factor.name,
            "; ".join(factor.parameters) or "-",
            marks,
        )
    return table


def factors_of_dimension(dimension: Dimension) -> list[Factor]:
    """The Table-1 factors belonging to one dimension."""
    return [f for f in TABLE1_FACTORS if f.dimension is dimension]


def factors_affecting(function: SystemFunction) -> list[Factor]:
    """The Table-1 factors stressing one system function."""
    return [f for f in TABLE1_FACTORS if function in f.affects]
