"""Acceptance tests: the paper's headline shapes must reproduce.

These run real (simulated-backend) experiments at paper scale and assert
the qualitative results of the evaluation section — who wins, by roughly
what factor, where the crossovers and OOM regions fall.  Absolute times
are simulator outputs and are not compared to the paper's wall-clock.
"""

import pytest

from repro.core.experiments import (
    run_fig1,
    run_fig7_for,
    run_fig8,
    run_fig9a,
    run_fig12,
)
from repro.core.observations import check_o1, check_o3, check_o4


class TestFigure1:
    @pytest.fixture(scope="class")
    def fig1(self):
        return run_fig1()

    def test_parallel_fraction_speedup_near_paper(self, fig1):
        # Paper: 5.69x.
        assert 4.5 <= fig1.parallel_fraction_speedup <= 7.0

    def test_user_code_speedup_marginal(self, fig1):
        # Paper: 1.24x — serial fraction and communication eat the gain.
        assert 1.0 < fig1.user_code_speedup <= 1.6

    def test_distributed_gpu_loses(self, fig1):
        # Paper: -1.20x — GPUs are slower once tasks are distributed.
        assert fig1.parallel_tasks_speedup < 1.0


class TestFigure8:
    @pytest.fixture(scope="class")
    def fig8(self):
        return run_fig8(grids=(16, 8, 4, 2))

    def test_matmul_func_scales_to_about_21x(self, fig8):
        speedups = fig8.speedups("matmul_func")
        values = [v for v in speedups.values() if v is not None]
        assert values == sorted(values)  # monotone in block size
        assert 17.0 <= max(values) <= 26.0  # paper: "as high as 21x"

    def test_add_func_never_wins(self, fig8):
        assert check_o3(fig8).passed

    def test_fine_grained_speedup_collapses(self, fig8):
        speedups = fig8.speedups("matmul_func")
        finest = speedups[min(speedups)]
        coarsest = speedups[max(speedups)]
        assert finest < coarsest / 2


class TestFigure9a:
    @pytest.fixture(scope="class")
    def fig9a(self):
        return run_fig9a(clusters=(10, 100, 1000), grids=(256, 64, 16))

    def test_speedup_grows_with_clusters(self, fig9a):
        assert check_o4(fig9a).passed

    def test_10_clusters_marginal(self, fig9a):
        # Paper: "no more than 1.5x" for 10 clusters.
        assert fig9a.best_speedup(10) < 1.6

    def test_1000_clusters_several_fold(self, fig9a):
        # Paper: up to ~7x higher than the 10-cluster scenario, bounded by
        # the parallel-fraction ceiling.
        assert fig9a.best_speedup(1000) / fig9a.best_speedup(10) >= 3.0

    def test_stage_ordering_at_10_clusters(self, fig9a):
        # Paper: parallel fraction < CPU-GPU comm < serial fraction.
        point = next(
            p for p in fig9a.points if p.n_clusters == 10 and p.grid == 64
        )
        assert (
            point.stage(True, "parallel_fraction")
            < point.stage(True, "cpu_gpu_comm")
            < point.stage(True, "serial_fraction")
        )

    def test_oom_region_grows_with_clusters(self, fig9a):
        oom_grids = {
            k: {p.grid for p in fig9a.points if p.n_clusters == k and p.status != "ok"}
            for k in (10, 100, 1000)
        }
        assert oom_grids[10] == set()
        assert oom_grids[1000] >= oom_grids[100]
        assert oom_grids[1000]


class TestFigure7:
    @pytest.fixture(scope="class")
    def kmeans_panel(self):
        return run_fig7_for("kmeans", "kmeans_10gb", grids=(256, 64, 16, 4))

    def test_o1_user_code_flat_for_kmeans(self, kmeans_panel):
        assert check_o1(kmeans_panel).passed

    def test_parallel_fraction_speedup_scales_with_block(self, kmeans_panel):
        speedups = kmeans_panel.speedup_by_block("parallel_fraction_speedup")
        values = [speedups[k] for k in sorted(speedups)]
        assert values[0] < values[-1]

    def test_matmul_32gb_oom_beyond_4x4(self):
        series = run_fig7_for("matmul", "matmul_32gb", grids=(4, 2))
        by_grid = {p.grid_label: p.status for p in series.points}
        # §5.1.3: the 32 GB dataset cannot test blocks beyond the 4x4 grid.
        assert by_grid["4 x 4"] == "ok"
        assert by_grid["2 x 2"] == "gpu_oom"

    def test_kmeans_100gb_oom_beyond_16x1(self):
        series = run_fig7_for("kmeans", "kmeans_100gb", grids=(16, 8))
        by_grid = {p.grid_label: p.status for p in series.points}
        assert by_grid["16 x 1"] == "ok"
        assert by_grid["8 x 1"] == "gpu_oom"

    def test_larger_dataset_increases_stage_speedups(self):
        small = run_fig7_for("kmeans", "kmeans_10gb", grids=(64,))
        large = run_fig7_for("kmeans", "kmeans_100gb", grids=(64,))
        # §5.1.3: bigger blocks at the same grid -> higher occupancy.
        assert (
            large.points[0].parallel_fraction_speedup
            > small.points[0].parallel_fraction_speedup
        )


class TestFigure12:
    def test_fma_repeats_matmul_trends(self):
        fma = run_fig12(grids=(16, 4, 2))
        mm = run_fig8(grids=(16, 4, 2))
        fma_speedups = sorted(v for v in fma.speedups().values() if v)
        mm_speedups = sorted(v for v in mm.speedups("matmul_func").values() if v)
        # Same direction and comparable magnitude at every block size.
        for f, m in zip(fma_speedups, mm_speedups):
            assert f == pytest.approx(m, rel=0.25)
