"""Plain-text rendering of experiment outputs.

The paper reports its results as figures; the benchmark harness reproduces
each one as an ASCII table (rows/series with the same axes), so the shapes
can be compared without a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def format_seconds(value: float | None) -> str:
    """Render a duration with sensible precision ('-' for missing)."""
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1:
        return f"{value * 1e3:.1f}ms"
    if value < 100:
        return f"{value:.2f}s"
    return f"{value:.0f}s"


def format_speedup(value: float | None) -> str:
    """Render a GPU-over-CPU speedup the way the paper quotes them.

    Slowdowns appear as the paper's negative convention: a ratio of 0.83
    prints as ``-1.20x`` ("GPUs 1.2x slower"), matching Figure 1.
    """
    if value is None:
        return "-"
    if value <= 0:
        return "-"
    if value < 1:
        return f"-{1 / value:.2f}x"
    return f"{value:.2f}x"


def format_bytes_mb(nbytes: float, binary: bool = False) -> str:
    """Render a size in MB (decimal) or MiB (binary), as figure labels."""
    unit = 2**20 if binary else 1e6
    value = nbytes / unit
    if value >= 100:
        return f"{value:.0f}"
    if value >= 10:
        return f"{value:.0f}"
    return f"{value:.1f}"


@dataclass
class Table:
    """A minimal ASCII table with a title and column alignment."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append a row (cells are stringified on render)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """The table as a string, column-aligned, title first."""
        cells = [[str(c) for c in row] for row in self.rows]
        widths = [
            max(len(str(h)), *(len(row[i]) for row in cells)) if cells else len(str(h))
            for i, h in enumerate(self.headers)
        ]
        lines = [self.title, ""]
        header = "  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """The table as GitHub-flavoured markdown."""
        header = "| " + " | ".join(str(h) for h in self.headers) + " |"
        rule = "|" + "|".join("---" for _ in self.headers) + "|"
        lines = [f"**{self.title}**", "", header, rule]
        for row in self.rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        return "\n".join(lines)

    def render_csv(self) -> str:
        """The table as CSV (header row first), for spreadsheet import."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow([str(cell) for cell in row])
        return buffer.getvalue()

    def __str__(self) -> str:
        return self.render()
