"""Extension benchmarks: the mitigation techniques the paper discusses.

§1/§2 survey mitigation techniques for the CPU-GPU transfer bottleneck
(staged pipelines / overlapping transfer with execution) and §3.3 notes
the one-task-per-core practice that avoids CPU over-subscription.  These
benches quantify both on the reproduction's cluster model:

* **Comm/compute overlap** hides most of matmul_func's transfer behind
  its O(N^3) kernel but cannot rescue the transfer-bound add_func — the
  mitigation moves the crossover, it does not remove it.
* **CPU over-subscription**: running 128 single-threaded tasks beats
  running fewer 4- or 16-threaded tasks, corroborating the practice the
  paper's runtime follows.
"""

from repro.algorithms import KMeansWorkflow, MatmulWorkflow
from repro.core.report import Table, format_seconds, format_speedup
from repro.data import paper_datasets
from repro.runtime import Runtime, RuntimeConfig
from repro.tracing import user_code_metrics


def _matmul_user_code(comm_overlap: bool):
    rt = Runtime(RuntimeConfig(use_gpu=True, comm_overlap=comm_overlap))
    MatmulWorkflow(paper_datasets()["matmul_8gb"], grid=8).build(rt)
    return user_code_metrics(rt.run().trace)


def test_comm_overlap_mitigation(once):
    def measure():
        return _matmul_user_code(False), _matmul_user_code(True)

    plain, overlapped = once(measure)
    table = Table(
        title="Staged-pipeline overlap: Matmul 8GB, 8x8 grid, GPU",
        headers=("task type", "plain uc", "overlapped uc", "gain"),
    )
    for task_type in ("matmul_func", "add_func"):
        gain = plain[task_type].user_code / overlapped[task_type].user_code
        table.add_row(
            task_type,
            format_seconds(plain[task_type].user_code),
            format_seconds(overlapped[task_type].user_code),
            format_speedup(gain),
        )
    print()
    print(table.render())
    matmul_gain = plain["matmul_func"].user_code / overlapped["matmul_func"].user_code
    add_gain = plain["add_func"].user_code / overlapped["add_func"].user_code
    assert matmul_gain > 1.1          # compute-heavy tasks benefit
    assert add_gain < matmul_gain     # transfer-bound tasks barely move
    assert add_gain < 1.1


def test_cpu_oversubscription(once):
    def makespan(threads):
        rt = Runtime(RuntimeConfig(use_gpu=False, cpu_threads_per_task=threads))
        KMeansWorkflow(
            paper_datasets()["kmeans_10gb"], grid_rows=128, n_clusters=100,
            iterations=1,
        ).build(rt)
        return rt.run().makespan

    def measure():
        return {threads: makespan(threads) for threads in (1, 4, 16)}

    times = once(measure)
    table = Table(
        title="CPU threads per task: K-means 10GB, 128 tasks, 128 cores",
        headers=("threads/task", "makespan", "vs 1 thread"),
    )
    for threads, value in times.items():
        table.add_row(
            threads, format_seconds(value), format_speedup(times[1] / value)
        )
    print()
    print(table.render())
    # The paper's §3.3 practice: one task per core wins.
    assert times[1] < times[4] < times[16]


def test_gpu_overflow(once):
    """Heterogeneous execution: GPU-eligible tasks may overflow to cores.

    In the K=10 sweet spot (user-code speedup below the 128/32 task-
    parallelism ratio) splitting work across both processors beats either
    pure mode; at K=1000 the runtime rationally declines to overflow.
    """
    from repro.hardware import StorageKind

    datasets = paper_datasets()

    def run(n_clusters, **config):
        rt = Runtime(RuntimeConfig(storage=StorageKind.LOCAL, **config))
        KMeansWorkflow(
            datasets["kmeans_10gb"], grid_rows=128, n_clusters=n_clusters,
            iterations=3,
        ).build(rt)
        return rt.run()

    def measure():
        out = {}
        for n_clusters in (10, 1000):
            out[n_clusters] = {
                "cpu": run(n_clusters, use_gpu=False).makespan,
                "gpu": run(n_clusters, use_gpu=True).makespan,
                "overflow": run(
                    n_clusters, use_gpu=True, gpu_overflow_to_cpu=True
                ).makespan,
            }
        return out

    times = once(measure)
    table = Table(
        title="GPU overflow to CPU cores: K-means 10GB, 128 tasks, local disk",
        headers=("clusters", "CPU only", "GPU only", "GPU+overflow"),
    )
    for n_clusters, row in times.items():
        table.add_row(
            n_clusters,
            format_seconds(row["cpu"]),
            format_seconds(row["gpu"]),
            format_seconds(row["overflow"]),
        )
    print()
    print(table.render())
    sweet = times[10]
    assert sweet["overflow"] < min(sweet["cpu"], sweet["gpu"])
    heavy = times[1000]
    assert heavy["overflow"] <= heavy["gpu"] * 1.01  # declines to overflow
