"""Workflow-level fuzzing: random configurations must behave sanely.

Hypothesis draws (algorithm, grid, storage, policy, processor) tuples on
small datasets; every draw must either complete with consistent metrics
or fail with one of the two modelled OOM conditions — nothing else.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms import (
    KMeansWorkflow,
    LinearRegressionWorkflow,
    MatmulFmaWorkflow,
    MatmulWorkflow,
    SyntheticWorkflow,
)
from repro.core.experiments.runners import run_workflow
from repro.data import DatasetSpec
from repro.faults import (
    FaultPlan,
    NodeFault,
    RetryPolicy,
    Straggler,
    TaskCrash,
)
from repro.hardware import StorageKind, minotauro
from repro.perfmodel import TaskCost
from repro.runtime import Runtime, RuntimeConfig, SchedulingPolicy
from tests.trace_invariants import assert_trace_invariants

_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

matmul_like = st.sampled_from([MatmulWorkflow, MatmulFmaWorkflow])


def _square_dataset(order):
    return DatasetSpec(f"fuzz_m{order}", rows=order, cols=order)


def _tall_dataset(rows):
    return DatasetSpec(f"fuzz_k{rows}", rows=rows, cols=50)


class TestFuzzedConfigurations:
    @given(
        workflow_cls=matmul_like,
        order_exp=st.integers(min_value=9, max_value=13),
        grid=st.sampled_from([1, 2, 4, 8]),
        storage=st.sampled_from(list(StorageKind)),
        policy=st.sampled_from(list(SchedulingPolicy)),
        use_gpu=st.booleans(),
    )
    @settings(**_SETTINGS)
    def test_matmul_family(self, workflow_cls, order_exp, grid, storage,
                           policy, use_gpu):
        workflow = workflow_cls(_square_dataset(2**order_exp), grid=grid)
        metrics = run_workflow(
            workflow_cls(_square_dataset(2**order_exp), grid=grid),
            use_gpu=use_gpu,
            storage=storage,
            scheduling=policy,
        )
        assert metrics.status in {"ok", "gpu_oom", "cpu_oom"}
        if metrics.ok:
            assert metrics.makespan > 0
            assert metrics.parallel_task_time > 0
            assert metrics.num_tasks > 0
            if grid == 1:
                # dislib Matmul: one task; FMA adds the zero accumulator.
                expected = 1 if workflow_cls is MatmulWorkflow else 2
                assert metrics.num_tasks == expected

    @given(
        rows=st.integers(min_value=10_000, max_value=5_000_000),
        grid=st.sampled_from([1, 2, 8, 32]),
        clusters=st.sampled_from([2, 10, 100]),
        storage=st.sampled_from(list(StorageKind)),
        policy=st.sampled_from(list(SchedulingPolicy)),
        use_gpu=st.booleans(),
    )
    @settings(**_SETTINGS)
    def test_kmeans(self, rows, grid, clusters, storage, policy, use_gpu):
        if grid > rows:
            return
        metrics = run_workflow(
            KMeansWorkflow(_tall_dataset(rows), grid_rows=grid,
                           n_clusters=clusters, iterations=2),
            use_gpu=use_gpu,
            storage=storage,
            scheduling=policy,
        )
        assert metrics.status in {"ok", "gpu_oom", "cpu_oom"}
        if metrics.ok:
            # Two iterations: partial_sum levels plus merges.
            assert metrics.dag_height == 4
            assert metrics.makespan >= metrics.parallel_task_time

    @given(
        rows=st.integers(min_value=50_000, max_value=2_000_000),
        grid=st.sampled_from([1, 4, 16]),
        use_gpu=st.booleans(),
    )
    @settings(**_SETTINGS)
    def test_linreg(self, rows, grid, use_gpu):
        if grid > rows:
            return
        metrics = run_workflow(
            LinearRegressionWorkflow(_tall_dataset(rows), grid_rows=grid),
            use_gpu=use_gpu,
        )
        assert metrics.status == "ok"
        assert metrics.makespan > 0

    @given(
        ratio=st.floats(min_value=0.0, max_value=1.0),
        grid=st.sampled_from([1, 8, 32]),
        use_gpu=st.booleans(),
    )
    @settings(**_SETTINGS)
    def test_synthetic(self, ratio, grid, use_gpu):
        metrics = run_workflow(
            SyntheticWorkflow(_tall_dataset(500_000), grid_rows=grid,
                              parallel_ratio=ratio),
            use_gpu=use_gpu,
        )
        assert metrics.status == "ok"
        user_code = metrics.user_code["synthetic_stage"]
        if ratio == 0.0:
            assert user_code.parallel_fraction == 0.0
        else:
            assert user_code.parallel_fraction > 0.0


def _fuzz_cost():
    return TaskCost(
        serial_flops=5e8,
        parallel_flops=0.0,
        parallel_items=0.0,
        arithmetic_intensity=1.0,
        input_bytes=10**6,
        output_bytes=10**5,
        host_device_bytes=0,
        gpu_memory_bytes=0,
    )


@st.composite
def random_dag(draw):
    """A random layered DAG: (num_roots, [(consumer_inputs...), ...])."""
    num_roots = draw(st.integers(1, 6))
    extra = draw(
        st.lists(st.integers(1, 3), min_size=0, max_size=10)
    )
    return num_roots, extra


@st.composite
def random_fault_plan(draw, num_tasks):
    """A random FaultPlan over a DAG of ``num_tasks`` tasks."""
    crashes = [
        TaskCrash(
            task_id=task_id,
            attempts=tuple(draw(st.sets(st.integers(1, 2), min_size=1, max_size=2))),
        )
        for task_id in draw(
            st.sets(st.integers(0, num_tasks - 1), max_size=3)
        )
    ]
    node_faults = [
        NodeFault(node=node, at_time=draw(st.floats(0.0, 2.0)))
        for node in draw(st.sets(st.integers(0, 3), max_size=2))
    ]
    stragglers = (
        [Straggler(factor=draw(st.floats(1.0, 4.0)))]
        if draw(st.booleans())
        else []
    )
    return FaultPlan(
        task_crashes=crashes,
        node_faults=node_faults,
        stragglers=stragglers,
        crash_probability=draw(st.sampled_from([0.0, 0.0, 0.1, 0.3])),
        seed=draw(st.integers(0, 2**16)),
    )


class TestFaultFuzz:
    """Random DAGs x random FaultPlans: recover or fail deterministically."""

    def _run(self, dag, plan, policy):
        num_roots, extra = dag
        config = RuntimeConfig(
            cluster=minotauro(num_nodes=4),
            scheduling=policy,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=0.05),
        )
        rt = Runtime(config)
        cost = _fuzz_cost()
        produced = []
        for i in range(num_roots):
            ref = rt.register_input(10**6, name=f"root{i}")
            produced.extend(rt.submit(name="stage", inputs=[ref], cost=cost))
        for fan_in in extra:
            inputs = produced[-fan_in:]
            produced.extend(rt.submit(name="stage", inputs=inputs, cost=cost))
        return rt.run()

    @given(
        dag=random_dag(),
        data=st.data(),
        policy=st.sampled_from(list(SchedulingPolicy)),
    )
    @settings(**_SETTINGS)
    def test_completes_or_fails_deterministically(self, dag, data, policy):
        num_roots, extra = dag
        plan = data.draw(random_fault_plan(num_roots + len(extra)))
        first = self._run(dag, plan, policy)
        second = self._run(dag, plan, policy)

        # Same seed, same plan -> bit-identical outcome.
        assert first.failed == second.failed
        assert first.failed_task_ids == second.failed_task_ids
        assert first.makespan == second.makespan
        assert first.attempts == second.attempts

        # Whatever happened, the trace stays structurally sound.
        assert_trace_invariants(first.trace)

        total = num_roots + len(extra)
        done = {t.task_id for t in first.trace.tasks}
        if first.failed:
            # Failed and completed tasks partition the DAG.
            assert set(first.failed_task_ids) | done == set(range(total))
            assert not set(first.failed_task_ids) & done
        else:
            assert done == set(range(total))
            assert first.makespan > 0

    @given(dag=random_dag(), seed=st.integers(0, 2**16))
    @settings(**_SETTINGS)
    def test_empty_plan_matches_fault_free_run(self, dag, seed):
        # An empty FaultPlan must not perturb scheduling or timing.
        plain = self._run(dag, None, SchedulingPolicy.GENERATION_ORDER)
        empty = self._run(
            dag, FaultPlan(seed=seed), SchedulingPolicy.GENERATION_ORDER
        )
        assert not plain.failed and not empty.failed
        assert plain.makespan == empty.makespan
        fingerprint = lambda r: [
            (t.task_id, t.start, t.end, t.node, t.core) for t in r.trace.tasks
        ]
        assert fingerprint(plain) == fingerprint(empty)
