"""The kernel-differential corpus: named cells with recorded oracle digests.

Shared by ``scripts/record_kernel_oracle.py`` (which recorded each cell's
trace digest under the legacy ``reference`` event kernel into
``tests/golden/kernel_oracle_digests.json`` before that kernel was
removed) and ``tests/test_kernel_differential.py`` (which asserts the
batched kernel still reproduces those digests bit for bit).

The cells cover the batched fast path (zero-latency clusters, where whole
ready batches are drained in one scheduler activation) and every
configuration that must *fall back* to the interleaved dispatch loop
(fault plans, lineage recovery, speculation, checkpoint barriers, nonzero
dispatch latency), plus GPU mode and the same-instant completion-cascade
shape that exposed the original drain bug.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.algorithms import GeneratedDagWorkflow
from repro.faults import CheckpointPolicy, FaultPlan, NodeFault, RetryPolicy
from repro.hardware import StorageKind, minotauro
from repro.runtime import Runtime, RuntimeConfig, SchedulingPolicy
from repro.tracing import trace_digest
from tests.golden_matrix import GOLDEN_FAULT_PLAN, GOLDEN_RETRY_POLICY


def zero_latency_cluster(num_nodes: int = 4):
    """A cluster whose scheduler decisions take no simulated time.

    This is the configuration under which the batched kernel's dispatcher
    may drain whole ready batches, so it is the one that actually
    exercises the fast path being differentially tested.
    """
    return dataclasses.replace(
        minotauro(num_nodes=num_nodes),
        scheduling_latency={policy: 0.0 for policy in SchedulingPolicy},
        locality_scan_seconds_per_task=0.0,
    )


def run_digest(config: RuntimeConfig, workflow: GeneratedDagWorkflow) -> str:
    """Execute the workflow under ``config`` and digest its trace."""
    runtime = Runtime(config)
    workflow.build(runtime)
    result = runtime.run()
    return trace_digest(result.trace, result.failed_task_ids)


#: Fast-path cells: zero-latency clusters where the batched dispatcher
#: drains ready batches.  Policies x storage x block size x jitter.
DRAIN_CASES = {
    "generation_order-local-small": dict(
        scheduling=SchedulingPolicy.GENERATION_ORDER,
        storage=StorageKind.LOCAL,
        block_mb=0.25,
    ),
    "generation_order-shared-large": dict(
        scheduling=SchedulingPolicy.GENERATION_ORDER,
        storage=StorageKind.SHARED,
        block_mb=4.0,
    ),
    "data_locality-local-large": dict(
        scheduling=SchedulingPolicy.DATA_LOCALITY,
        storage=StorageKind.LOCAL,
        block_mb=4.0,
    ),
    "data_locality-shared-small": dict(
        scheduling=SchedulingPolicy.DATA_LOCALITY,
        storage=StorageKind.SHARED,
        block_mb=0.25,
    ),
    "lifo-local-jitter": dict(
        scheduling=SchedulingPolicy.LIFO,
        storage=StorageKind.LOCAL,
        block_mb=1.0,
        jitter_sigma=0.05,
        jitter_seed=29,
    ),
    "generation_order-local-jitter": dict(
        scheduling=SchedulingPolicy.GENERATION_ORDER,
        storage=StorageKind.LOCAL,
        block_mb=1.0,
        jitter_sigma=0.02,
        jitter_seed=31,
    ),
}

#: Fallback cells: configurations the batched dispatcher must refuse to
#: drain, exercising the interleaved dispatch loop under the flat heap.
FALLBACK_CASES = {
    "default-latency": dict(),
    "faults-retry": dict(
        fault_plan=GOLDEN_FAULT_PLAN,
        retry_policy=GOLDEN_RETRY_POLICY,
    ),
    "recovery-node-loss": dict(
        storage=StorageKind.LOCAL,
        fault_plan=FaultPlan(node_faults=(NodeFault(node=1, at_time=0.2),)),
        retry_policy=RetryPolicy(max_attempts=3, recover_lost_blocks=True),
    ),
    "speculation": dict(
        fault_plan=FaultPlan(
            stragglers=(dataclasses.replace(GOLDEN_FAULT_PLAN.stragglers[0]),)
        ),
        retry_policy=RetryPolicy(max_attempts=2, speculation_factor=1.5),
    ),
    "checkpoint-barriers": dict(
        storage=StorageKind.LOCAL,
        checkpoint_policy=CheckpointPolicy(every_levels=2),
    ),
}


def _drain_case(name: str) -> tuple[Callable[[], RuntimeConfig], GeneratedDagWorkflow]:
    overrides = dict(DRAIN_CASES[name])
    block_mb = overrides.pop("block_mb")

    def make_config() -> RuntimeConfig:
        return RuntimeConfig(
            cluster=zero_latency_cluster(), use_gpu=False, **overrides
        )

    workflow = GeneratedDagWorkflow(
        width=32, depth=12, fan_in=2, block_mb=block_mb, seed=5
    )
    return make_config, workflow


def _fallback_case(
    name: str,
) -> tuple[Callable[[], RuntimeConfig], GeneratedDagWorkflow]:
    overrides = FALLBACK_CASES[name]

    def make_config() -> RuntimeConfig:
        return RuntimeConfig(
            scheduling=SchedulingPolicy.GENERATION_ORDER,
            use_gpu=False,
            **overrides,
        )

    workflow = GeneratedDagWorkflow(
        width=16, depth=8, fan_in=2, block_mb=1.0, seed=9
    )
    return make_config, workflow


def _gpu_case() -> tuple[Callable[[], RuntimeConfig], GeneratedDagWorkflow]:
    def make_config() -> RuntimeConfig:
        return RuntimeConfig(
            cluster=zero_latency_cluster(),
            use_gpu=True,
            gpu_overflow_to_cpu=True,
        )

    workflow = GeneratedDagWorkflow(
        width=16, depth=6, fan_in=2, block_mb=2.0, parallel_ratio=0.9, seed=3
    )
    return make_config, workflow


def _cascade_case(
    policy: SchedulingPolicy,
) -> tuple[Callable[[], RuntimeConfig], GeneratedDagWorkflow]:
    def make_config() -> RuntimeConfig:
        return RuntimeConfig(
            cluster=zero_latency_cluster(num_nodes=2),
            scheduling=policy,
            storage=StorageKind.LOCAL,
            use_gpu=False,
        )

    workflow = GeneratedDagWorkflow(
        width=4, depth=12, fan_in=2, block_mb=4.0, seed=7
    )
    return make_config, workflow


def corpus_cases() -> dict[
    str, tuple[Callable[[], RuntimeConfig], GeneratedDagWorkflow]
]:
    """Every named corpus cell: ``name -> (make_config, workflow)``."""
    cases = {}
    for name in sorted(DRAIN_CASES):
        cases[f"drain:{name}"] = _drain_case(name)
    for name in sorted(FALLBACK_CASES):
        cases[f"fallback:{name}"] = _fallback_case(name)
    cases["gpu:overflow"] = _gpu_case()
    for policy in sorted(SchedulingPolicy, key=lambda p: p.value):
        cases[f"cascade:{policy.value}"] = _cascade_case(policy)
    return cases
