"""What-if study on a custom cluster: beyond the paper's testbed.

Defines a modern-GPU cluster (A100-class devices on NVLink-class
interconnect) next to the paper's K80-era Minotauro, and reruns the
K-means and Matmul sweeps on both.  The point of the paper's analysis
method is exactly this kind of question: does a faster device change
*when* GPUs are worth using, or only *how much* they win by?

Run:  python examples/custom_cluster.py
"""

from repro import (
    KMeansWorkflow,
    MatmulWorkflow,
    Runtime,
    RuntimeConfig,
    minotauro,
    paper_datasets,
)
from repro.core.report import Table, format_speedup
from repro.hardware import GpuOutOfMemoryError, HostOutOfMemoryError
from repro.tracing import parallel_task_metrics, user_code_metrics


def modern_cluster():
    """The library's A100-class preset (see repro.hardware.presets)."""
    from repro.hardware import modern

    return modern()


def speedups(cluster, workflow_factory, primary):
    """(user-code speedup, parallel-task speedup) or None on OOM."""
    measured = {}
    for use_gpu in (False, True):
        workflow = workflow_factory()
        runtime = Runtime(RuntimeConfig(cluster=cluster, use_gpu=use_gpu))
        workflow.build(runtime)
        try:
            result = runtime.run()
        except (GpuOutOfMemoryError, HostOutOfMemoryError):
            return None
        measured[use_gpu] = (
            user_code_metrics(result.trace)[primary].user_code,
            parallel_task_metrics(
                result.trace, set(workflow.parallel_task_types)
            ).average_parallel_time,
        )
    return (
        measured[False][0] / measured[True][0],
        measured[False][1] / measured[True][1],
    )


def main():
    datasets = paper_datasets()
    workloads = {
        "Matmul 8GB, 4x4": (
            lambda: MatmulWorkflow(datasets["matmul_8gb"], grid=4),
            "matmul_func",
        ),
        "Matmul 8GB, 16x16": (
            lambda: MatmulWorkflow(datasets["matmul_8gb"], grid=16),
            "matmul_func",
        ),
        "K-means 10GB, 128x1, K=10": (
            lambda: KMeansWorkflow(datasets["kmeans_10gb"], 128, 10, 3),
            "partial_sum",
        ),
        "K-means 10GB, 128x1, K=1000": (
            lambda: KMeansWorkflow(datasets["kmeans_10gb"], 128, 1000, 3),
            "partial_sum",
        ),
    }
    table = Table(
        title="GPU-over-CPU speedups: K80-era vs A100-class cluster",
        headers=(
            "workload",
            "K80 Usr.Code",
            "K80 P.Task",
            "A100 Usr.Code",
            "A100 P.Task",
        ),
    )
    clusters = {"K80": minotauro(), "A100": modern_cluster()}
    for name, (factory, primary) in workloads.items():
        cells = [name]
        for label in ("K80", "A100"):
            outcome = speedups(clusters[label], factory, primary)
            if outcome is None:
                cells += ["OOM", "OOM"]
            else:
                cells += [format_speedup(outcome[0]), format_speedup(outcome[1])]
        table.add_row(*cells)
    print(table.render())
    print(
        "\nA faster device widens the user-code speedups, but the "
        "distributed-level picture\nstill hinges on serial fractions, data "
        "movement, and the 32-vs-128 parallelism gap —\nthe paper's factors "
        "survive a hardware generation."
    )


if __name__ == "__main__":
    main()
