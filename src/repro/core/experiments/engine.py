"""Parallel sweep engine for the experiment layer (docs/sweeps.md).

Every figure of the paper's evaluation is a *sweep*: dozens of
independent ``(workflow, configuration)`` executions whose results are
assembled into tables.  This module turns each execution into a
declarative, picklable :class:`CellSpec` and executes batches of them
through one :class:`SweepEngine`, which

* **deduplicates** identical cells within one invocation (Figure 11's
  base design repeats the Figure 7/8 configurations verbatim),
* **fans out** cache misses over a persistent
  :class:`~repro.core.shard.ShardPool` (``--jobs N``, default
  ``os.cpu_count()``) whose workers import :mod:`repro` once, stream
  cell specs over a task queue, and write results straight into the
  on-disk cache, and
* **memoises** results in a content-addressed on-disk cache
  (:mod:`repro.core.experiments.cache`) keyed by a SHA-256 digest of the
  canonicalized cell spec plus a model-version fingerprint, so entries
  self-invalidate whenever the calibration constants or the cost-model /
  scheduler / simulator sources change.

The simulator is deterministic, so the engine guarantees strict
equivalence: serial, parallel, cold-cache, and warm-cache execution all
yield value-identical :class:`~repro.core.experiments.runners.RunMetrics`
(and therefore byte-identical rendered tables).  Both the fresh and the
cached path round-trip metrics through the same JSON record encoding to
keep that property structural rather than accidental.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.core import ledger as ledger_module
from repro.core import shard

from repro.algorithms import (
    KMeansWorkflow,
    MatmulFmaWorkflow,
    MatmulWorkflow,
    SyntheticWorkflow,
)
from repro.core.experiments.cache import (
    SweepCache,
    default_cache_dir,
    metrics_from_record,
    metrics_to_record,
)
from repro.core.experiments.runners import RunMetrics, run_workflow
from repro.core.persistence import to_jsonable
from repro.data import DatasetSpec, paper_datasets
from repro.hardware import ClusterSpec, StorageKind
from repro.runtime import SchedulingPolicy

#: Algorithms a cell can name; each maps to one workflow constructor.
ALGORITHMS = ("matmul", "matmul_fma", "kmeans", "synthetic")


@dataclass(frozen=True)
class CellSpec:
    """One executable sweep cell: workload plus configuration.

    Fully declarative and picklable, so a cell can be shipped to a worker
    process, canonicalized into a digest, and reconstructed from either.
    The dataset is named by ``dataset_key`` (a
    :func:`repro.data.paper_datasets` key) or carried inline as
    ``dataset_spec`` (for skew variants and synthetic sweeps); ``cluster``
    is ``None`` for the default Minotauro model or an inline
    :class:`~repro.hardware.ClusterSpec` for resource-sensitivity sweeps.
    """

    algorithm: str
    grid: int
    dataset_key: str | None = None
    dataset_spec: DatasetSpec | None = None
    n_clusters: int = 0
    iterations: int = 3
    parallel_ratio: float = 1.0
    use_gpu: bool = False
    storage: StorageKind = StorageKind.SHARED
    scheduling: SchedulingPolicy = SchedulingPolicy.GENERATION_ORDER
    cluster: ClusterSpec | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if (self.dataset_key is None) == (self.dataset_spec is None):
            raise ValueError(
                "exactly one of dataset_key / dataset_spec must be given"
            )

    def dataset(self) -> DatasetSpec:
        """Resolve the cell's dataset specification."""
        if self.dataset_spec is not None:
            return self.dataset_spec
        return paper_datasets()[self.dataset_key]


def build_workflow(spec: CellSpec):
    """Construct the cell's workflow object (also used for metadata)."""
    dataset = spec.dataset()
    if spec.algorithm == "matmul":
        return MatmulWorkflow(dataset, grid=spec.grid)
    if spec.algorithm == "matmul_fma":
        return MatmulFmaWorkflow(dataset, grid=spec.grid)
    if spec.algorithm == "kmeans":
        return KMeansWorkflow(
            dataset,
            grid_rows=spec.grid,
            n_clusters=spec.n_clusters,
            iterations=spec.iterations,
        )
    return SyntheticWorkflow(
        dataset, spec.grid, parallel_ratio=spec.parallel_ratio
    )


def execute_cell(spec: CellSpec) -> RunMetrics:
    """Run one cell on the simulated backend (the engine's unit of work)."""
    return run_workflow(
        build_workflow(spec),
        use_gpu=spec.use_gpu,
        storage=spec.storage,
        scheduling=spec.scheduling,
        cluster=spec.cluster,
        with_trace_digest=True,
    )


# --------------------------------------------------------------- digests

#: Modules whose source defines what a simulated result *means*.  Their
#: bytes are hashed into the model fingerprint, so editing the cost
#: model, a scheduler, or the event engine invalidates every cache entry.
_MODEL_MODULES = (
    "repro.perfmodel.costmodel",
    "repro.perfmodel.amdahl",
    "repro.perfmodel.calibration",
    "repro.hardware.specs",
    "repro.runtime.scheduler",
    "repro.runtime.locality",
    "repro.runtime.backends.simulated",
    "repro.sim.engine",
    "repro.sim.process",
    "repro.sim.resources",
)

_SOURCE_HASH: str | None = None


def _model_source_hash() -> str:
    """Hash of the model-defining module sources (cached per process)."""
    global _SOURCE_HASH
    if _SOURCE_HASH is None:
        digest = hashlib.sha256()
        for name in _MODEL_MODULES:
            module = importlib.import_module(name)
            digest.update(name.encode("utf-8"))
            digest.update(b"\0")
            digest.update(Path(module.__file__).read_bytes())
        _SOURCE_HASH = digest.hexdigest()
    return _SOURCE_HASH


def model_fingerprint() -> str:
    """Version stamp of the performance model behind every cached result.

    Combines the module-source hash with the *live* calibration constants
    (:data:`repro.perfmodel.calibration.CALIBRATION_NOTES`), so both a
    source edit and a runtime perturbation of a constant change the
    fingerprint — and with it every cell digest.
    """
    from repro.perfmodel.calibration import CALIBRATION_NOTES

    constants = {key: value for key, (value, _why) in CALIBRATION_NOTES.items()}
    digest = hashlib.sha256()
    digest.update(_model_source_hash().encode("utf-8"))
    digest.update(b"\0")
    digest.update(json.dumps(constants, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()[:16]


def canonical_cell(spec: CellSpec) -> str:
    """Canonical JSON form of one cell (sorted keys, compact separators)."""
    return json.dumps(to_jsonable(spec), sort_keys=True, separators=(",", ":"))


def cell_digest(spec: CellSpec, fingerprint: str | None = None) -> str:
    """Content address of one cell under one model version."""
    digest = hashlib.sha256()
    digest.update((fingerprint or model_fingerprint()).encode("utf-8"))
    digest.update(b"\0")
    digest.update(canonical_cell(spec).encode("utf-8"))
    return digest.hexdigest()


# --------------------------------------------------------------- engine


def _execute_recorded(spec: CellSpec) -> tuple[dict[str, Any], float]:
    """Execute one cell, return (record, wall seconds)."""
    started = time.perf_counter()
    metrics = execute_cell(spec)
    return metrics_to_record(metrics), time.perf_counter() - started


def _cache_entry(
    digest: str,
    fingerprint: str,
    spec: CellSpec,
    record: dict[str, Any],
    wall: float,
) -> dict[str, Any]:
    """The on-disk record layout shared by worker and in-process writes."""
    return {
        "digest": digest,
        "fingerprint": fingerprint,
        "spec": to_jsonable(spec),
        "wall_seconds": round(wall, 6),
        "metrics": record,
    }


def _execute_to_cache(
    spec: CellSpec,
    digest: str,
    fingerprint: str,
    cache_root: str | None,
) -> tuple[dict[str, Any], float]:
    """Shard-pool worker: execute one cell and persist it directly.

    Writing from the worker keeps the result's bytes off the task queue
    twice (the record still returns to the parent for the in-memory
    memo, but the disk write happens where the data is) and makes cache
    population independent of the parent surviving the batch.  The
    atomic ``SweepCache.put`` tolerates concurrent writers.
    """
    record, wall = _execute_recorded(spec)
    if cache_root is not None:
        SweepCache(cache_root).put(
            digest, _cache_entry(digest, fingerprint, spec, record, wall)
        )
    return record, wall


@dataclass
class SweepStats:
    """Counters of one engine's lifetime, rendered as the CLI stats line."""

    cells: int = 0
    executed: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    #: Cells answered from a replayed execution ledger (``--resume``).
    resumed: int = 0
    evictions: int = 0
    #: Wall-clock the cache hits originally cost to compute.
    wall_saved: float = 0.0
    #: Wall-clock spent executing misses (sum over workers).
    executed_wall: float = 0.0

    @property
    def misses(self) -> int:
        """Cells that had to be simulated."""
        return self.executed

    @property
    def hits(self) -> int:
        """Cells answered without simulating (cache, dedup, ledger)."""
        return self.cache_hits + self.memo_hits + self.resumed

    @property
    def hit_rate(self) -> float:
        """Fraction of submitted cells answered without simulating."""
        return self.hits / self.cells if self.cells else 0.0

    def line(self) -> str:
        """The one-line summary printed by ``repro figures``."""
        return (
            f"[sweep] cells={self.cells} hits={self.cache_hits} "
            f"dedup={self.memo_hits} misses={self.misses} "
            f"resumed={self.resumed} "
            f"evictions={self.evictions} hit_rate={self.hit_rate:.0%} "
            f"saved={self.wall_saved:.1f}s wall={self.executed_wall:.1f}s"
        )


class SweepEngine:
    """Executes batches of cells with dedup, caching, and fan-out.

    One engine instance is meant to span one logical invocation (e.g. the
    whole of ``repro figures all``): its in-memory memo deduplicates
    cells shared between figures, its stats accumulate across every
    :meth:`run_cells` call, and its worker pool — spawned lazily on the
    first parallel batch — stays warm for all of them.  Call
    :meth:`close` (or use the engine as a context manager) to reap the
    workers; an unclosed engine's daemon workers die with the process.

    When caching is on (or an explicit ``ledger_path`` is given) every
    cell execution is journalled to a crash-consistent
    :class:`~repro.core.ledger.ExecutionLedger` under the cache dir:
    PENDING on submission, DISPATCHED per attempt, then
    DONE / FAILED / QUARANTINED.  ``resume=True`` replays the journal
    first and answers every previously finished cell from its DONE
    record — no cache lookup, no simulation — so a run SIGKILLed
    mid-sweep re-executes only what was unfinished (``repro figures
    --resume``).  ``policy`` and ``chaos`` are forwarded to the worker
    pool (supervision rules and the deterministic fault-injection plan).
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache_dir: str | Path | None = None,
        cache: bool = True,
        ledger_path: str | Path | None = None,
        resume: bool = False,
        policy=None,
        chaos=None,
    ) -> None:
        self.jobs = jobs if jobs is not None and jobs > 0 else (os.cpu_count() or 1)
        self.stats = SweepStats()
        self._fingerprint = model_fingerprint()
        self._memo: dict[str, RunMetrics] = {}
        self._pool: shard.ShardPool | None = None
        self._cache: SweepCache | None = None
        self._policy = policy
        self._chaos = chaos
        if cache:
            self._cache = SweepCache(
                Path(cache_dir) if cache_dir is not None else default_cache_dir()
            )
            self.stats.evictions += self._cache.prune(self._fingerprint)
        # The ledger lives beside the cache shards; SweepCache only globs
        # one level deeper (``*/*.json``), so the journal is invisible to
        # cache scans and pruning.
        if ledger_path is None and self._cache is not None:
            ledger_path = self._cache.root / "ledger.jsonl"
        if resume and ledger_path is None:
            raise ValueError(
                "resume requires an execution ledger: enable the cache "
                "or pass ledger_path"
            )
        self._ledger: ledger_module.ExecutionLedger | None = None
        self._resumed: set[str] = set()
        if ledger_path is not None:
            if resume:
                replayed = ledger_module.replay_ledger(ledger_path)
                for digest, record in replayed.done_records().items():
                    self._memo[digest] = metrics_from_record(record)
                    self._resumed.add(digest)
            self._ledger = ledger_module.ExecutionLedger(ledger_path)
            self._ledger.open_session(
                resumed=resume, fingerprint=self._fingerprint
            )

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool and the ledger (idempotent; the
        engine stays usable for serial and cached execution afterwards,
        which simply goes unjournalled)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._ledger is not None:
            self._ledger.close()
            self._ledger = None

    @classmethod
    def serial(cls) -> "SweepEngine":
        """A plain in-process engine: one worker, no on-disk cache.

        This is the default the figure runners fall back to, so calling a
        runner without an engine behaves exactly like the pre-engine code
        (pure computation, no filesystem writes) — just deduplicated.
        """
        return cls(jobs=1, cache=False)

    @property
    def fingerprint(self) -> str:
        """The model-version fingerprint baked into this engine's digests."""
        return self._fingerprint

    @property
    def cache_dir(self) -> Path | None:
        """Where results are persisted (``None`` when caching is off)."""
        return self._cache.root if self._cache is not None else None

    @property
    def ledger_path(self) -> Path | None:
        """Where the execution journal lives (``None`` when disabled)."""
        return self._ledger.path if self._ledger is not None else None

    def run_cell(self, spec: CellSpec) -> RunMetrics:
        """Execute (or recall) a single cell."""
        return self.run_cells([spec])[0]

    def run_cells(self, specs: Sequence[CellSpec]) -> list[RunMetrics]:
        """Execute a batch of cells; results align with the input order.

        Duplicate specs (within the batch or across earlier calls on the
        same engine) are simulated once; cache hits are loaded from disk;
        the remaining misses run in parallel when ``jobs > 1``.
        """
        specs = list(specs)
        digests = [cell_digest(spec, self._fingerprint) for spec in specs]
        self.stats.cells += len(specs)

        pending: dict[str, CellSpec] = {}
        for spec, digest in zip(specs, digests):
            if digest in self._resumed:
                # Answered from the replayed ledger; later repeats of the
                # same digest count as ordinary dedup hits.
                self._resumed.discard(digest)
                self.stats.resumed += 1
                continue
            if digest in self._memo:
                self.stats.memo_hits += 1
                continue
            if digest in pending:
                self.stats.memo_hits += 1
                continue
            record = self._cache.get(digest) if self._cache is not None else None
            if record is not None and record.get("fingerprint") == self._fingerprint:
                self._memo[digest] = metrics_from_record(record["metrics"])
                self.stats.cache_hits += 1
                self.stats.wall_saved += float(record.get("wall_seconds", 0.0))
                continue
            pending[digest] = spec

        if pending:
            items = list(pending.items())
            if self._ledger is not None:
                for digest, _spec in items:
                    self._ledger.append(ledger_module.PENDING, item=digest)
            # Nested fan-out degrades to serial: a pool worker must never
            # spin up a second process pool inside itself (fork bombs,
            # oversubscription, and a second interpreter warm-up per cell).
            parallel = self.jobs > 1 and len(items) > 1 and not shard.in_worker()
            if parallel:
                if self._pool is None:
                    self._pool = shard.ShardPool(
                        self.jobs, policy=self._policy, chaos=self._chaos
                    )
                cache_root = (
                    str(self._cache.root) if self._cache is not None else None
                )
                merged = self._pool.run(
                    [
                        shard.ShardItem(
                            instance_id=digest,
                            fn=_execute_to_cache,
                            args=(spec, digest, self._fingerprint, cache_root),
                        )
                        for digest, spec in items
                    ],
                    on_event=self._journal_event,
                )
                outcomes = [merged[digest] for digest, _spec in items]
            else:
                outcomes = [
                    self._execute_journalled(digest, spec)
                    for digest, spec in items
                ]
            for (digest, spec), (record, wall) in zip(items, outcomes):
                # The fresh path round-trips through the same record
                # encoding as a cache hit, so both are value-identical.
                self._memo[digest] = metrics_from_record(record)
                self.stats.executed += 1
                self.stats.executed_wall += wall
                if self._cache is not None and not parallel:
                    # Workers already persisted their own results on the
                    # parallel path; only in-process execution writes here.
                    self._cache.put(
                        digest,
                        _cache_entry(
                            digest, self._fingerprint, spec, record, wall
                        ),
                    )

        return [self._memo[digest] for digest in digests]

    # ------------------------------------------------------------ journal
    def _execute_journalled(
        self, digest: str, spec: CellSpec
    ) -> tuple[dict[str, Any], float]:
        """Serial execution with the same ledger transitions as a worker."""
        if self._ledger is not None:
            self._ledger.append(ledger_module.DISPATCHED, item=digest, attempt=1)
        record, wall = _execute_recorded(spec)
        if self._ledger is not None:
            self._ledger.append(
                ledger_module.DONE,
                item=digest,
                record=record,
                duration=round(wall, 6),
            )
        return record, wall

    def _journal_event(self, kind: str, info: dict) -> None:
        """Mirror pool supervision events into the execution ledger."""
        if self._ledger is None:
            return
        if kind == "dispatch":
            self._ledger.append(
                ledger_module.DISPATCHED,
                item=info["item"],
                worker=info["worker"],
                attempt=info["attempt"],
            )
        elif kind == "result":
            if info["status"] == "ok":
                record, wall = info["payload"]
                self._ledger.append(
                    ledger_module.DONE,
                    item=info["item"],
                    worker=info["worker"],
                    record=record,
                    duration=round(wall, 6),
                )
            else:
                error_kind, message = info["payload"]
                self._ledger.append(
                    ledger_module.FAILED,
                    item=info["item"],
                    worker=info["worker"],
                    error=f"{error_kind}: {message}",
                )
        elif kind == "quarantine":
            self._ledger.append(
                ledger_module.QUARANTINED,
                item=info["item"],
                error=info["reason"],
                attempt=info["attempts"],
            )


def cells_product(
    algorithm: str,
    grids: Sequence[int],
    dataset_key: str | None = None,
    dataset_spec: DatasetSpec | None = None,
    processors: Sequence[bool] = (False, True),
    **common: Any,
) -> list[CellSpec]:
    """The common sweep shape: ``grids x processors`` for one workload.

    Cells are ordered grid-major, CPU before GPU — the iteration order the
    figure runners pair results back up with.
    """
    return [
        CellSpec(
            algorithm=algorithm,
            grid=grid,
            dataset_key=dataset_key,
            dataset_spec=dataset_spec,
            use_gpu=use_gpu,
            **common,
        )
        for grid in grids
        for use_gpu in processors
    ]
