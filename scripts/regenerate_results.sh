#!/usr/bin/env bash
# Regenerate the complete evaluation: tests, benchmarks, figure records.
#
# Usage:  scripts/regenerate_results.sh [output_dir]
#
# Produces, under the output directory (default ./results):
#   test_output.txt     — full unit/integration/property test run
#   bench_output.txt    — every paper figure/table + extension benches
#   figures/*.json      — machine-readable records of each figure
set -euo pipefail

out="${1:-results}"
mkdir -p "$out"

echo "== tests =="
pytest tests/ 2>&1 | tee "$out/test_output.txt"

echo "== benchmarks (every paper artefact) =="
pytest benchmarks/ --benchmark-only -s 2>&1 | tee "$out/bench_output.txt"

echo "== figure JSON records =="
python -m repro figures all --save "$out/figures"

echo "done: $out"
