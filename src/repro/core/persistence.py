"""JSON persistence for experiment results.

Experiment result objects are plain dataclasses; this module serialises
them (dataclasses, enums, tuples, NumPy scalars and arrays) to JSON so a
benchmark run can leave a machine-readable record next to the rendered
tables — the raw material for EXPERIMENTS.md-style paper-vs-measured
comparisons and for regression-diffing two calibrations.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any

import numpy as np


def to_jsonable(value: Any) -> Any:
    """Recursively convert a result object into JSON-compatible data."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # JSON has no NaN/Infinity; encode them as strings.
        if value != value:
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{
                field.name: to_jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, np.ndarray):
        return to_jsonable(value.tolist())
    if isinstance(value, np.generic):
        return to_jsonable(value.item())
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    raise TypeError(f"cannot serialise {type(value).__name__} to JSON")


def dumps_deterministic(payload: Any) -> str:
    """Byte-stable JSON encoding for on-disk records.

    Keys are sorted, separators fixed, and a trailing newline appended,
    so the same payload always serialises to the same bytes regardless of
    insertion order — a prerequisite for diffing saved figures and for
    the sweep-cache equivalence guarantees.
    """
    return (
        json.dumps(payload, indent=2, sort_keys=True, separators=(",", ": "))
        + "\n"
    )


def save_result(result: Any, path: str | Path, metadata: dict | None = None) -> Path:
    """Write one experiment result (plus optional metadata) as JSON.

    The encoding is deterministic (:func:`dumps_deterministic`): saving
    the same result twice yields byte-identical files.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "metadata": to_jsonable(metadata or {}),
        "result": to_jsonable(result),
    }
    path.write_text(dumps_deterministic(payload))
    return path


def load_result(path: str | Path) -> dict:
    """Read a JSON record written by :func:`save_result`."""
    return json.loads(Path(path).read_text())


def diff_scalars(old: Any, new: Any, path: str = "") -> list[str]:
    """Human-readable differences between two JSON records.

    Compares leaf scalars recursively; returns one line per differing
    leaf.  Useful for spotting how a calibration change moved the figures.
    """
    differences: list[str] = []
    if isinstance(old, dict) and isinstance(new, dict):
        for key in sorted(set(old) | set(new)):
            child = f"{path}.{key}" if path else str(key)
            if key not in old:
                differences.append(f"{child}: added")
            elif key not in new:
                differences.append(f"{child}: removed")
            else:
                differences.extend(diff_scalars(old[key], new[key], child))
        return differences
    if isinstance(old, list) and isinstance(new, list):
        if len(old) != len(new):
            differences.append(f"{path}: length {len(old)} -> {len(new)}")
            return differences
        for index, (a, b) in enumerate(zip(old, new)):
            differences.extend(diff_scalars(a, b, f"{path}[{index}]"))
        return differences
    if old != new:
        differences.append(f"{path}: {old!r} -> {new!r}")
    return differences
