"""Unit tests for the hardware specs and cluster model."""

import pytest

from repro.hardware import (
    ClusterSpec,
    CpuSpec,
    DiskSpec,
    GpuDevice,
    GpuOutOfMemoryError,
    GpuSpec,
    HostOutOfMemoryError,
    InterconnectSpec,
    NetworkSpec,
    SimulatedCluster,
    StorageKind,
    minotauro,
)
from repro.sim import Simulator


class TestMinotauroPreset:
    def test_matches_paper_testbed(self):
        spec = minotauro()
        assert spec.num_nodes == 8
        assert spec.node.cpu.cores_per_node == 16
        assert spec.node.gpu.devices_per_node == 4
        assert spec.total_cpu_cores == 128
        assert spec.total_gpus == 32
        assert spec.node.gpu.memory_bytes == 12 * 1024**3

    def test_scaling_node_count(self):
        spec = minotauro(num_nodes=4)
        assert spec.total_cpu_cores == 64
        assert spec.total_gpus == 16

    def test_all_scheduling_policies_have_latencies(self):
        from repro.runtime import SchedulingPolicy

        spec = minotauro()
        assert set(spec.scheduling_latency) == {p.value for p in SchedulingPolicy}
        assert (
            spec.scheduling_latency["data_locality"]
            > spec.scheduling_latency["generation_order"]
        )

    def test_invalid_node_count_rejected(self):
        with pytest.raises(ValueError):
            minotauro(num_nodes=0)


class TestSpecValidation:
    def test_cpu_spec_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CpuSpec("x", cores_per_node=0, flops_per_core=1, mem_bandwidth_per_core=1,
                    serialization_bandwidth=1)
        with pytest.raises(ValueError):
            CpuSpec("x", cores_per_node=1, flops_per_core=0, mem_bandwidth_per_core=1,
                    serialization_bandwidth=1)

    def test_gpu_utilisation_curve(self):
        gpu = minotauro().node.gpu
        assert gpu.utilisation(0) == 0.0
        assert gpu.utilisation(gpu.saturation_items) == pytest.approx(0.5)
        assert gpu.utilisation(100 * gpu.saturation_items) > 0.98
        # Monotone increasing.
        values = [gpu.utilisation(10.0**e) for e in range(3, 10)]
        assert values == sorted(values)

    def test_interconnect_per_transfer_cannot_exceed_node(self):
        with pytest.raises(ValueError):
            InterconnectSpec("x", bandwidth_per_transfer=10.0, node_bandwidth=5.0,
                             latency=0.0)

    def test_disk_per_stream_cap_validation(self):
        with pytest.raises(ValueError):
            DiskSpec("x", read_bandwidth=1.0, write_bandwidth=1.0, latency=0.0,
                     per_stream_cap=0.0)

    def test_shared_disk_has_stream_cap(self):
        spec = minotauro()
        assert spec.shared_disk.per_stream_cap is not None
        assert spec.shared_disk.per_stream_cap < spec.shared_disk.read_bandwidth

    def test_network_validation(self):
        with pytest.raises(ValueError):
            NetworkSpec("x", link_bandwidth=0.0, fabric_bandwidth=1.0, latency=0.0)


class TestGpuDevice:
    def _device(self):
        return GpuDevice(minotauro().node.gpu, index=1, node=2)

    def test_allocate_and_release(self):
        device = self._device()
        device.allocate(2**30)
        assert device.allocated == 2**30
        device.release(2**30)
        assert device.allocated == 0

    def test_oom_on_over_allocation(self):
        device = self._device()
        with pytest.raises(GpuOutOfMemoryError):
            device.allocate(13 * 1024**3)

    def test_oom_respects_existing_allocations(self):
        device = self._device()
        device.allocate(10 * 1024**3)
        with pytest.raises(GpuOutOfMemoryError):
            device.allocate(3 * 1024**3)

    def test_check_fit_without_allocating(self):
        device = self._device()
        device.check_fit(12 * 1024**3)
        with pytest.raises(GpuOutOfMemoryError):
            device.check_fit(12 * 1024**3 + 1)
        assert device.allocated == 0

    def test_over_release_rejected(self):
        device = self._device()
        device.allocate(100)
        with pytest.raises(ValueError):
            device.release(200)

    def test_peak_tracking(self):
        device = self._device()
        device.allocate(500)
        device.release(400)
        device.allocate(100)
        assert device.peak_allocated == 500

    def test_error_message_mentions_device(self):
        device = self._device()
        with pytest.raises(GpuOutOfMemoryError, match="node2/gpu1"):
            device.allocate(2**44)


class TestHostMemory:
    def test_error_carries_sizes(self):
        error = HostOutOfMemoryError(200 * 2**30, 128 * 2**30, "node3")
        assert error.requested == 200 * 2**30
        assert "node3" in str(error)


class TestSimulatedCluster:
    def test_resources_match_spec(self):
        sim = Simulator()
        cluster = SimulatedCluster(sim, minotauro())
        assert len(cluster.nodes) == 8
        assert cluster.total_cpu_cores == 128
        assert cluster.total_gpus == 32
        node = cluster.nodes[0]
        assert node.cores.capacity == 16
        assert node.gpus.capacity == 4
        assert len(node.gpu_devices) == 4

    def test_claim_gpu_prefers_most_free_memory(self):
        sim = Simulator()
        cluster = SimulatedCluster(sim, minotauro())
        node = cluster.nodes[0]
        node.gpu_devices[0].allocate(2**30)
        chosen = node.claim_gpu()
        assert chosen is not node.gpu_devices[0]

    def test_node_of_core(self):
        sim = Simulator()
        cluster = SimulatedCluster(sim, minotauro())
        assert cluster.node_of_core(0) == 0
        assert cluster.node_of_core(15) == 0
        assert cluster.node_of_core(16) == 1
        assert cluster.node_of_core(127) == 7


class TestStorageKind:
    def test_labels(self):
        assert StorageKind.LOCAL.label == "Local disk"
        assert StorageKind.SHARED.label == "Shared disk"

    def test_string_value(self):
        assert str(StorageKind.LOCAL) == "local_disk"
