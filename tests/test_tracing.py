"""Unit tests for trace records and the §4.2 metric aggregations."""

import pytest

from repro.tracing import (
    Stage,
    StageRecord,
    TaskRecord,
    Trace,
    data_movement_metrics,
    parallel_task_metrics,
    user_code_metrics,
)


def _stage(task_id, stage, start, end, task_type="t", node=0, core=0, level=0,
           gpu=False):
    return StageRecord(
        task_id=task_id,
        task_type=task_type,
        stage=stage,
        start=start,
        end=end,
        node=node,
        core=core,
        level=level,
        used_gpu=gpu,
    )


def _task(task_id, start, end, task_type="t", node=0, core=0, level=0, gpu=False):
    return TaskRecord(
        task_id=task_id,
        task_type=task_type,
        start=start,
        end=end,
        node=node,
        core=core,
        level=level,
        used_gpu=gpu,
    )


class TestRecords:
    def test_duration(self):
        record = _stage(0, Stage.SERIAL_FRACTION, 1.0, 3.5)
        assert record.duration == 2.5

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            _stage(0, Stage.SERIAL_FRACTION, 2.0, 1.0)

    def test_makespan(self):
        trace = Trace()
        trace.add_task(_task(0, 1.0, 4.0))
        trace.add_task(_task(1, 2.0, 9.0))
        assert trace.makespan == 8.0

    def test_empty_trace_makespan_zero(self):
        assert Trace().makespan == 0.0

    def test_task_types_first_seen_order(self):
        trace = Trace()
        trace.add_task(_task(0, 0, 1, task_type="b"))
        trace.add_task(_task(1, 0, 1, task_type="a"))
        trace.add_task(_task(2, 0, 1, task_type="b"))
        assert trace.task_types() == ["b", "a"]


class TestUserCodeMetrics:
    def test_averages_per_task_type(self):
        trace = Trace()
        for task_id, duration in ((0, 2.0), (1, 4.0)):
            trace.add_stage(_stage(task_id, Stage.SERIAL_FRACTION, 0, duration))
            trace.add_task(_task(task_id, 0, duration))
        metrics = user_code_metrics(trace)["t"]
        assert metrics.serial_fraction == pytest.approx(3.0)
        assert metrics.num_tasks == 2

    def test_split_comm_records_are_summed_per_task(self):
        # The simulated backend records H2D and D2H separately.
        trace = Trace()
        trace.add_stage(_stage(0, Stage.CPU_GPU_COMM, 0.0, 1.0))
        trace.add_stage(_stage(0, Stage.CPU_GPU_COMM, 2.0, 2.5))
        trace.add_task(_task(0, 0, 3))
        metrics = user_code_metrics(trace)["t"]
        assert metrics.cpu_gpu_comm == pytest.approx(1.5)

    def test_user_code_sums_three_stages(self):
        trace = Trace()
        trace.add_stage(_stage(0, Stage.SERIAL_FRACTION, 0, 1))
        trace.add_stage(_stage(0, Stage.PARALLEL_FRACTION, 1, 4))
        trace.add_stage(_stage(0, Stage.CPU_GPU_COMM, 4, 5))
        trace.add_task(_task(0, 0, 5))
        metrics = user_code_metrics(trace)["t"]
        assert metrics.user_code == pytest.approx(5.0)

    def test_types_are_separated(self):
        trace = Trace()
        trace.add_stage(_stage(0, Stage.SERIAL_FRACTION, 0, 1, task_type="x"))
        trace.add_stage(_stage(1, Stage.SERIAL_FRACTION, 0, 9, task_type="y"))
        trace.add_task(_task(0, 0, 1, task_type="x"))
        trace.add_task(_task(1, 0, 9, task_type="y"))
        metrics = user_code_metrics(trace)
        assert metrics["x"].serial_fraction == 1.0
        assert metrics["y"].serial_fraction == 9.0


class TestDataMovementMetrics:
    def test_grouped_per_core(self):
        trace = Trace()
        trace.add_stage(_stage(0, Stage.DESERIALIZATION, 0, 2, core=0))
        trace.add_stage(_stage(1, Stage.DESERIALIZATION, 0, 4, core=1))
        trace.add_stage(_stage(0, Stage.SERIALIZATION, 2, 3, core=0))
        metrics = data_movement_metrics(trace)
        assert metrics.num_cores == 2
        assert metrics.deserialization_per_core == pytest.approx(3.0)
        assert metrics.serialization_per_core == pytest.approx(0.5)
        assert metrics.total_per_core == pytest.approx(3.5)

    def test_cores_on_different_nodes_are_distinct(self):
        trace = Trace()
        trace.add_stage(_stage(0, Stage.DESERIALIZATION, 0, 2, node=0, core=0))
        trace.add_stage(_stage(1, Stage.DESERIALIZATION, 0, 2, node=1, core=0))
        assert data_movement_metrics(trace).num_cores == 2

    def test_empty_trace(self):
        metrics = data_movement_metrics(Trace())
        assert metrics.num_cores == 0
        assert metrics.total_per_core == 0.0


class TestParallelTaskMetrics:
    def test_level_wall_times(self):
        trace = Trace()
        trace.add_task(_task(0, 0.0, 3.0, level=0))
        trace.add_task(_task(1, 1.0, 5.0, level=0))
        trace.add_task(_task(2, 5.0, 6.0, level=1))
        metrics = parallel_task_metrics(trace)
        assert metrics.level_wall_times[0] == pytest.approx(5.0)
        assert metrics.level_wall_times[1] == pytest.approx(1.0)
        assert metrics.average_parallel_time == pytest.approx(3.0)

    def test_filter_to_parallel_task_types(self):
        trace = Trace()
        trace.add_task(_task(0, 0.0, 4.0, task_type="partial_sum", level=0))
        trace.add_task(_task(1, 4.0, 4.5, task_type="merge", level=1))
        metrics = parallel_task_metrics(trace, {"partial_sum"})
        assert metrics.parallel_levels == (0,)
        assert metrics.average_parallel_time == pytest.approx(4.0)

    def test_total_time(self):
        trace = Trace()
        trace.add_task(_task(0, 0.0, 2.0, level=0))
        trace.add_task(_task(1, 2.0, 5.0, level=1))
        assert parallel_task_metrics(trace).total_time == pytest.approx(5.0)

    def test_empty(self):
        metrics = parallel_task_metrics(Trace())
        assert metrics.average_parallel_time == 0.0
