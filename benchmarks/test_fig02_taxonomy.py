"""Benchmark — Figure 2: the CPU-GPU processing taxonomy.

Regenerates the paper's related-work classification tree with the study's
scope marked, and cross-checks that the limitation areas of the taxonomy
are exactly the system functions Table 1's factors stress — the paper's
scope is internally consistent.
"""

from repro.core.taxonomy import figure2_taxonomy, scope_matches_table1


def test_fig2_taxonomy(once):
    tree = once(figure2_taxonomy)
    print()
    print("Figure 2: taxonomy of CPU-GPU processing ('*' = this study's scope)")
    print()
    print(tree.render())
    scope = tree.scope()
    assert "Task-based Workflows" in scope
    assert "Heterogeneous CPU-GPU" in scope
    assert "Dedicated" in scope
    assert scope_matches_table1()
