"""Shared machinery for the per-figure experiment runners.

:func:`run_workflow` executes one workflow under one configuration on the
simulated backend and extracts the §4.2 metrics, turning the two
out-of-memory conditions into statuses instead of exceptions — the
figures' "GPU OOM" / "CPU GPU OOM" regions are data points, not crashes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.hardware import (
    ClusterSpec,
    GpuOutOfMemoryError,
    HostOutOfMemoryError,
    StorageKind,
    minotauro,
)
from repro.runtime import Runtime, RuntimeConfig, SchedulingPolicy
from repro.tracing import (
    DataMovementMetrics,
    UserCodeMetrics,
    data_movement_metrics,
    parallel_task_metrics,
    trace_digest,
    user_code_metrics,
)

#: Status strings used across all experiment outputs.
STATUS_OK = "ok"
STATUS_GPU_OOM = "gpu_oom"
STATUS_CPU_OOM = "cpu_oom"


class Workflow(Protocol):
    """What a workload must provide to be runnable by the harness."""

    name: str
    parallel_task_types: frozenset[str]

    def build(self, runtime: Runtime, materialize: bool = False) -> object:
        """Submit all tasks to the runtime."""


@dataclass
class RunMetrics:
    """Metrics of one (workflow, configuration) execution."""

    status: str
    use_gpu: bool
    storage: StorageKind
    scheduling: SchedulingPolicy
    makespan: float = 0.0
    #: §4.2 task-user-code metrics per task type.
    user_code: dict[str, UserCodeMetrics] = field(default_factory=dict)
    #: §4.2 data-movement metrics, per CPU core.
    movement: DataMovementMetrics | None = None
    #: §4.2 parallel-task execution time (mean over parallel levels).
    parallel_task_time: float = 0.0
    dag_width: int = 0
    dag_height: int = 0
    num_tasks: int = 0
    error: str = ""
    #: Canonical digest of the execution trace (``repro.tracing.golden``),
    #: recorded when the run goes through the sweep engine so cached
    #: results carry provable provenance.  Empty for plain direct runs.
    trace_digest: str = ""

    @property
    def ok(self) -> bool:
        """Whether the run completed (no OOM)."""
        return self.status == STATUS_OK


def run_workflow(
    workflow: Workflow,
    use_gpu: bool,
    storage: StorageKind = StorageKind.SHARED,
    scheduling: SchedulingPolicy = SchedulingPolicy.GENERATION_ORDER,
    cluster: ClusterSpec | None = None,
    with_trace_digest: bool = False,
) -> RunMetrics:
    """Execute one workflow on the simulated backend and collect metrics.

    ``with_trace_digest`` additionally records the canonical golden-trace
    digest on the returned metrics (used by the sweep engine so cache
    records are verifiable against a fresh execution).
    """
    config = RuntimeConfig(
        cluster=cluster or minotauro(),
        storage=storage,
        scheduling=scheduling,
        use_gpu=use_gpu,
    )
    runtime = Runtime(config)
    workflow.build(runtime)
    metrics = RunMetrics(
        status=STATUS_OK,
        use_gpu=use_gpu,
        storage=storage,
        scheduling=scheduling,
        dag_width=runtime.graph.width,
        dag_height=runtime.graph.height,
        num_tasks=runtime.graph.num_tasks,
    )
    try:
        result = runtime.run()
    except GpuOutOfMemoryError as error:
        metrics.status = STATUS_GPU_OOM
        metrics.error = str(error)
        return metrics
    except HostOutOfMemoryError as error:
        metrics.status = STATUS_CPU_OOM
        metrics.error = str(error)
        return metrics
    metrics.makespan = result.makespan
    metrics.user_code = user_code_metrics(result.trace)
    metrics.movement = data_movement_metrics(result.trace)
    metrics.parallel_task_time = parallel_task_metrics(
        result.trace, set(workflow.parallel_task_types)
    ).average_parallel_time
    if with_trace_digest:
        metrics.trace_digest = trace_digest(result.trace)
    return metrics


def speedup(cpu_value: float, gpu_value: float) -> float | None:
    """GPU-over-CPU speedup, ``None`` when undefined."""
    if gpu_value <= 0 or cpu_value <= 0:
        return None
    return cpu_value / gpu_value
