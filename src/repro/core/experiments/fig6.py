"""Figure 6 — DAG shapes of the two algorithm families.

The paper contrasts the PyCOMPSs-generated DAGs: K-means (grid 4x1, 3
iterations) is narrow and deep — low task parallelism, high dependency —
while Matmul (grid 4x4) is wide and shallow.  This runner rebuilds both
DAGs through the runtime's automatic dependency detection and reports
their shape statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms import KMeansWorkflow, MatmulWorkflow
from repro.core.report import Table
from repro.data import DatasetSpec
from repro.runtime import Runtime, RuntimeConfig, TaskGraph


@dataclass
class DagShape:
    """Shape statistics of one workflow DAG."""

    algorithm: str
    num_tasks: int
    num_edges: int
    width: int
    height: int
    tasks_per_type: dict[str, int]

    @property
    def aspect(self) -> float:
        """Width / height: >1 means wide-shallow, <1 narrow-deep."""
        return self.width / self.height if self.height else 0.0


@dataclass
class Fig6Result:
    """DAG shapes for K-means (4x1, 3 iterations) and Matmul (4x4)."""

    kmeans: DagShape
    matmul: DagShape

    def render(self) -> str:
        """Figure 6 as a table."""
        table = Table(
            title="Figure 6: DAG shapes (K-means 4x1 x3 iters vs Matmul 4x4)",
            headers=(
                "algorithm",
                "tasks",
                "edges",
                "width",
                "height",
                "width/height",
                "per type",
            ),
        )
        for shape in (self.kmeans, self.matmul):
            per_type = ", ".join(
                f"{name}={count}" for name, count in shape.tasks_per_type.items()
            )
            table.add_row(
                shape.algorithm,
                shape.num_tasks,
                shape.num_edges,
                shape.width,
                shape.height,
                f"{shape.aspect:.2f}",
                per_type,
            )
        return table.render()


def _shape_of(graph: TaskGraph, algorithm: str) -> DagShape:
    per_type: dict[str, int] = {}
    for task in graph.tasks():
        per_type[task.name] = per_type.get(task.name, 0) + 1
    return DagShape(
        algorithm=algorithm,
        num_tasks=graph.num_tasks,
        num_edges=graph.num_edges,
        width=graph.width,
        height=graph.height,
        tasks_per_type=per_type,
    )


def run_fig6() -> Fig6Result:
    """Build both Figure 6 DAGs and extract their shapes."""
    kmeans_dataset = DatasetSpec("fig6_kmeans", rows=4_000, cols=100)
    matmul_dataset = DatasetSpec("fig6_matmul", rows=4_096, cols=4_096)

    runtime = Runtime(RuntimeConfig())
    KMeansWorkflow(kmeans_dataset, grid_rows=4, n_clusters=10, iterations=3).build(
        runtime
    )
    kmeans_shape = _shape_of(runtime.graph, "K-means (4x1, 3 iterations)")

    runtime = Runtime(RuntimeConfig())
    MatmulWorkflow(matmul_dataset, grid=4).build(runtime)
    matmul_shape = _shape_of(runtime.graph, "Matmul (4x4)")

    return Fig6Result(kmeans=kmeans_shape, matmul=matmul_shape)
