"""Extension benchmark — the §4.3 deferred resource parameters.

Sweeps #GPU devices, GPU memory size, CPU-GPU bus throughput, and shared
disk throughput around the Minotauro baseline.  Expected shapes on this
workload mix: GPU count and storage bandwidth are the binding resources;
GPU memory is inert once the working set fits; bus bandwidth barely
matters because the measured configurations are movement- or
occupancy-bound, not transfer-bound — evidence for the paper's claim that
single-factor reasoning (e.g. "buy a faster bus") misleads.
"""

from repro.core.experiments.ext_resources import run_resource_sensitivity


def test_resource_sensitivity(once):
    result = once(run_resource_sensitivity)
    print()
    print(result.render())
    for workload in ("matmul", "kmeans"):
        gpus = result.sensitivity("gpus_per_node", workload)
        disk = result.sensitivity("shared_disk_bandwidth", workload)
        memory = result.sensitivity("gpu_memory", workload)
        bus = result.sensitivity("bus_bandwidth", workload)
        # Binding resources move the needle by integer factors...
        assert gpus > 2.0
        assert disk > 1.3
        # ... the deferred "obvious" knobs are inert here.
        assert memory < 1.05
        assert bus < 1.1

    # More GPUs monotonically help K-means (more task parallelism).
    series = result.series("gpus_per_node", "kmeans")
    ordered = [series[label] for label in ("1", "2", "4", "8")]
    assert all(a > b for a, b in zip(ordered, ordered[1:]))
