"""Trace records for task-processing stages.

Each task goes through the stages of the paper's Figure 4; the runtime
emits one :class:`StageRecord` per stage plus a :class:`TaskRecord`
summarising the whole task.  Times are simulated seconds for the simulated
backend and wall-clock seconds for the in-process backend.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Stage(str, enum.Enum):
    """Task-processing stages (Figure 4 of the paper)."""

    SCHEDULING = "scheduling"
    DESERIALIZATION = "deserialization"
    SERIAL_FRACTION = "serial_fraction"
    PARALLEL_FRACTION = "parallel_fraction"
    CPU_GPU_COMM = "cpu_gpu_comm"
    SERIALIZATION = "serialization"


@dataclass(frozen=True)
class StageRecord:
    """One stage of one task."""

    task_id: int
    task_type: str
    stage: Stage
    start: float
    end: float
    node: int
    core: int
    level: int
    used_gpu: bool

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"stage {self.stage} of task {self.task_id} ends before it starts"
            )

    @property
    def duration(self) -> float:
        """Stage duration in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class TaskRecord:
    """Whole-task summary."""

    task_id: int
    task_type: str
    start: float
    end: float
    node: int
    core: int
    level: int
    used_gpu: bool

    @property
    def duration(self) -> float:
        """Task duration in seconds, scheduling included."""
        return self.end - self.start


@dataclass
class Trace:
    """An append-only collection of stage and task records."""

    stages: list[StageRecord] = field(default_factory=list)
    tasks: list[TaskRecord] = field(default_factory=list)

    def add_stage(self, record: StageRecord) -> None:
        """Append a stage record."""
        self.stages.append(record)

    def add_task(self, record: TaskRecord) -> None:
        """Append a whole-task record."""
        self.tasks.append(record)

    @property
    def makespan(self) -> float:
        """Wall time from the first task start to the last task end."""
        if not self.tasks:
            return 0.0
        return max(t.end for t in self.tasks) - min(t.start for t in self.tasks)

    def stages_of(self, stage: Stage) -> list[StageRecord]:
        """All records of one stage kind."""
        return [r for r in self.stages if r.stage is stage]

    def stages_of_task_type(self, task_type: str) -> list[StageRecord]:
        """All stage records belonging to one task type."""
        return [r for r in self.stages if r.task_type == task_type]

    def task_types(self) -> list[str]:
        """Distinct task types in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.tasks:
            seen.setdefault(record.task_type, None)
        return list(seen)

    def levels(self) -> list[int]:
        """Distinct DAG levels present, ascending."""
        return sorted({t.level for t in self.tasks})
