"""Shared trace invariants, asserted by the backend and fault tests.

Every executor — simulated, threaded, fault-injected — must produce
traces satisfying the same structural properties:

* work placed on one (node, core) slot never overlaps in time;
* a retried task's attempts are time-ordered (attempt n ends before
  attempt n+1 starts) — except speculative races, whose whole point is
  two concurrently running attempts;
* ``Trace.makespan`` spans exactly the successful task records;
* every on-core stage record lies within the overall recovered span.

Import :func:`assert_trace_invariants` and call it on any produced
trace; :func:`assert_result_invariants` adds the
:class:`~repro.runtime.WorkflowResult`-level contract on top.
"""

from __future__ import annotations

from repro.tracing import ATTEMPT_SPECULATION_CANCELLED, Stage, Trace

#: Slack for floating-point timestamp comparisons.
EPS = 1e-9

#: Records on node/core -1 (master-side markers: retry waits, failure,
#: recompute, and speculation-launch events) occupy no core.
_OFF_CORE = {Stage.FAILURE, Stage.RETRY_WAIT, Stage.RECOMPUTE, Stage.SPECULATIVE}


def _assert_non_overlapping(intervals: list[tuple[float, float, str]]) -> None:
    ordered = sorted(intervals)
    for (s1, e1, what1), (s2, e2, what2) in zip(ordered, ordered[1:]):
        assert e1 <= s2 + EPS, (
            f"overlapping work on one core: {what1} [{s1}, {e1}] vs "
            f"{what2} [{s2}, {e2}]"
        )


def assert_trace_invariants(trace: Trace) -> None:
    """Assert the structural invariants every backend's trace must hold."""
    # -- per-core non-overlap of committed/attempted work -----------------
    # TaskAttempt records (fault runs) describe every occupancy interval;
    # fault-free traces only have TaskRecords.
    by_core: dict[tuple[int, int], list[tuple[float, float, str]]] = {}
    occupancy = trace.attempts if trace.attempts else trace.tasks
    for record in occupancy:
        label = f"task {record.task_id} (attempt {record.attempt})"
        by_core.setdefault((record.node, record.core), []).append(
            (record.start, record.end, label)
        )
    for intervals in by_core.values():
        _assert_non_overlapping(intervals)

    # -- attempts of one task are time-ordered ----------------------------
    for task_id in {a.task_id for a in trace.attempts}:
        attempts = trace.attempts_of(task_id)
        numbers = [a.attempt for a in attempts]
        assert numbers == sorted(numbers)
        assert len(set(numbers)) == len(numbers), (
            f"task {task_id} has duplicate attempt numbers {numbers}"
        )
        for earlier, later in zip(attempts, attempts[1:]):
            if ATTEMPT_SPECULATION_CANCELLED in (earlier.outcome, later.outcome):
                # A speculative race: the backup runs concurrently with
                # the primary by design, so ordering does not apply to
                # any pair involving the cancelled loser.
                continue
            assert earlier.end <= later.start + EPS, (
                f"task {task_id} attempt {later.attempt} started before "
                f"attempt {earlier.attempt} ended"
            )

    # -- makespan equals the span of successful task records --------------
    if trace.tasks:
        expected = max(t.end for t in trace.tasks) - min(
            t.start for t in trace.tasks
        )
        assert abs(trace.makespan - expected) <= EPS
        assert trace.recovered_span >= trace.makespan - EPS

    # -- every record lies within the recovered span ----------------------
    points = [(t.start, t.end) for t in trace.tasks]
    points += [(a.start, a.end) for a in trace.attempts]
    points += [(r.start, r.end) for r in trace.stages]
    if points:
        lo = min(start for start, _ in points)
        hi = max(end for _, end in points)
        for record in trace.stages:
            assert record.start >= lo - EPS and record.end <= hi + EPS
            assert record.end >= record.start
        # On-core stage records must carry a real placement.
        for record in trace.stages:
            if record.stage not in _OFF_CORE:
                assert record.node >= 0 and record.core >= 0


def assert_result_invariants(result) -> None:
    """WorkflowResult-level contract on top of the trace invariants.

    ``failed_task_ids`` is deterministically sorted ascending, free of
    duplicates, consistent with the ``failed`` flag, and disjoint from
    the committed task set (a task either produced its outputs or failed
    permanently, never both).
    """
    assert_trace_invariants(result.trace)
    failed_ids = result.failed_task_ids
    assert failed_ids == tuple(sorted(set(failed_ids))), (
        f"failed_task_ids not deterministically sorted: {failed_ids}"
    )
    assert result.failed == bool(failed_ids)
    committed = {t.task_id for t in result.trace.tasks}
    # A resurrected-then-failed task would appear in both sets only if
    # recovery bookkeeping leaked; the executor forbids it.
    overlap = committed & set(failed_ids)
    known = {t.task_id for t in result.graph.tasks()}
    assert set(failed_ids) <= known
    assert not overlap or all(
        any(
            s.task_id == task_id and s.stage is Stage.RECOMPUTE
            for s in result.trace.stages
        )
        for task_id in overlap
    ), f"tasks both committed and failed without resurrection: {overlap}"
