"""Property-based tests of the trace aggregations on random traces."""

from hypothesis import given, strategies as st

from repro.tracing import (
    Stage,
    StageRecord,
    TaskRecord,
    Trace,
    data_movement_metrics,
    decompose_overheads,
    parallel_task_metrics,
    user_code_metrics,
)

USER_CODE_STAGES = (
    Stage.SERIAL_FRACTION,
    Stage.PARALLEL_FRACTION,
    Stage.CPU_GPU_COMM,
)


@st.composite
def traces(draw):
    """A random but internally consistent trace."""
    n_tasks = draw(st.integers(min_value=1, max_value=12))
    trace = Trace()
    clock = 0.0
    for task_id in range(n_tasks):
        task_type = draw(st.sampled_from(["alpha", "beta"]))
        node = draw(st.integers(min_value=0, max_value=2))
        core = draw(st.integers(min_value=0, max_value=3))
        level = draw(st.integers(min_value=0, max_value=2))
        start = clock + draw(st.floats(min_value=0.0, max_value=1.0))
        cursor = start
        stages = draw(
            st.lists(
                st.sampled_from(list(Stage)), min_size=1, max_size=5
            )
        )
        for stage in stages:
            duration = draw(st.floats(min_value=0.001, max_value=2.0))
            trace.add_stage(
                StageRecord(
                    task_id=task_id, task_type=task_type, stage=stage,
                    start=cursor, end=cursor + duration, node=node,
                    core=core, level=level, used_gpu=False,
                )
            )
            cursor += duration
        trace.add_task(
            TaskRecord(
                task_id=task_id, task_type=task_type, start=start,
                end=cursor, node=node, core=core, level=level,
                used_gpu=False,
            )
        )
        clock = cursor
    return trace


class TestAggregationProperties:
    @given(traces())
    def test_user_code_is_sum_of_its_stages(self, trace):
        metrics = user_code_metrics(trace)
        for task_type, m in metrics.items():
            assert m.user_code >= 0
            assert abs(
                m.user_code
                - (m.serial_fraction + m.parallel_fraction + m.cpu_gpu_comm)
            ) < 1e-9

    @given(traces())
    def test_per_task_averages_bounded_by_totals(self, trace):
        metrics = user_code_metrics(trace)
        for task_type, m in metrics.items():
            total = sum(
                r.duration
                for r in trace.stages_of_task_type(task_type)
                if r.stage in USER_CODE_STAGES
            )
            assert m.user_code <= total + 1e-9

    @given(traces())
    def test_movement_totals_conserved(self, trace):
        metrics = data_movement_metrics(trace)
        expected = sum(
            r.duration
            for r in trace.stages
            if r.stage in (Stage.DESERIALIZATION, Stage.SERIALIZATION)
        )
        recovered = metrics.num_cores * metrics.total_per_core
        assert abs(recovered - expected) < 1e-6

    @given(traces())
    def test_level_walls_cover_member_tasks(self, trace):
        metrics = parallel_task_metrics(trace)
        for task in trace.tasks:
            assert metrics.level_wall_times[task.level] >= (
                task.duration - 1e-9
            )

    @given(traces())
    def test_decomposition_shares_form_a_partition(self, trace):
        breakdown = decompose_overheads(trace)
        total = (
            breakdown.compute_share
            + breakdown.movement_share
            + breakdown.comm_share
            + breakdown.scheduling_share
            + breakdown.idle_share
        )
        # Busy time can exceed makespan x cores only if stages overlapped
        # across tasks on one core, which this generator never produces.
        assert 0.0 <= breakdown.idle_share <= 1.0
        assert abs(total - 1.0) < 1e-6 or total >= 1.0 - 1e-6

    @given(traces())
    def test_makespan_spans_all_tasks(self, trace):
        for task in trace.tasks:
            assert task.duration <= trace.makespan + 1e-9
