"""Figure 8 — task computational complexity in Matmul (§5.2.1).

Matmul has two task types with complexities two orders of magnitude
apart: ``matmul_func`` is O(N^3) and ``add_func`` O(N).  The figure shows
the user-code GPU speedup per task type against the block size, with the
parallel-fraction and CPU-GPU-communication times that explain them: the
O(N^3) kernel amortises the bus transfer and scales to ~21x, while the
O(N) kernel is transfer-dominated and the GPU *loses* at every size.

Note the paper skips the 8192 MB point: at maximum granularity the matrix
is multiplied by a single ``matmul_func`` and no ``add_func`` exists (and
the GPU is out of memory anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms import MatmulWorkflow
from repro.core.experiments.engine import SweepEngine, cells_product
from repro.core.experiments.runners import RunMetrics, speedup
from repro.core.report import Table, format_seconds, format_speedup
from repro.data import paper_datasets

FIG8_GRIDS = (16, 8, 4, 2)


@dataclass
class Fig8Point:
    """Per-task-type stage times at one block size."""

    block_mb: float
    grid: int
    cpu: RunMetrics
    gpu: RunMetrics

    @property
    def status(self) -> str:
        """'ok' unless either processor run hit an OOM condition."""
        for metrics in (self.cpu, self.gpu):
            if not metrics.ok:
                return metrics.status
        return "ok"

    def user_code_speedup(self, task_type: str) -> float | None:
        """GPU-over-CPU user-code speedup of one task type."""
        if not (self.cpu.ok and self.gpu.ok):
            return None
        if task_type not in self.cpu.user_code:
            return None
        return speedup(
            self.cpu.user_code[task_type].user_code,
            self.gpu.user_code[task_type].user_code,
        )

    def stage_time(self, task_type: str, use_gpu: bool, attr: str) -> float | None:
        """One averaged stage duration for one task type."""
        metrics = self.gpu if use_gpu else self.cpu
        if not metrics.ok or task_type not in metrics.user_code:
            return None
        return getattr(metrics.user_code[task_type], attr)


@dataclass
class Fig8Result:
    """The Figure 8 sweep."""

    dataset: str
    points: list[Fig8Point] = field(default_factory=list)

    def speedups(self, task_type: str) -> dict[float, float | None]:
        """block MB -> user-code speedup for one task type."""
        return {p.block_mb: p.user_code_speedup(task_type) for p in self.points}

    def chart(self) -> str:
        """Figure 8 as an ASCII chart (speedup vs block size)."""
        from repro.core.plotting import speedup_chart

        return speedup_chart(
            {
                "matmul_func": self.speedups("matmul_func"),
                "add_func": self.speedups("add_func"),
            },
            f"Figure 8 shape: user-code GPU speedup vs block MB ({self.dataset})",
        )

    def render(self) -> str:
        """Figure 8 as a table."""
        table = Table(
            title=f"Figure 8: task computational complexity in Matmul ({self.dataset})",
            headers=(
                "block MB",
                "task type",
                "Usr.Code speedup",
                "P.Frac CPU",
                "P.Frac GPU",
                "CPU-GPU comm",
                "status",
            ),
        )
        for point in self.points:
            for task_type in ("matmul_func", "add_func"):
                table.add_row(
                    f"{point.block_mb:.0f}",
                    task_type,
                    format_speedup(point.user_code_speedup(task_type)),
                    format_seconds(
                        point.stage_time(task_type, False, "parallel_fraction")
                    ),
                    format_seconds(
                        point.stage_time(task_type, True, "parallel_fraction")
                    ),
                    format_seconds(point.stage_time(task_type, True, "cpu_gpu_comm")),
                    point.status,
                )
        return table.render()


def run_fig8(
    dataset_key: str = "matmul_8gb",
    grids: tuple[int, ...] = FIG8_GRIDS,
    engine: SweepEngine | None = None,
) -> Fig8Result:
    """Sweep Matmul block sizes and profile both task types."""
    engine = engine if engine is not None else SweepEngine.serial()
    dataset = paper_datasets()[dataset_key]
    result = Fig8Result(dataset=dataset_key)
    block_mbs = [MatmulWorkflow(dataset, grid=grid).block_mb for grid in grids]
    results = engine.run_cells(
        cells_product("matmul", grids, dataset_key=dataset_key)
    )
    for index, (grid, block_mb) in enumerate(zip(grids, block_mbs)):
        result.points.append(
            Fig8Point(
                block_mb=block_mb,
                grid=grid,
                cpu=results[2 * index],
                gpu=results[2 * index + 1],
            )
        )
    return result
