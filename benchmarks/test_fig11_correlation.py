"""Benchmark E10 — Figure 11: the Spearman correlation matrix.

Paper shapes (signs and rough magnitudes of the key cells): execution
time correlates positively with block size (~0.4), parallel fraction
(~0.38), computational complexity (~0.5), and shared-disk storage
(~0.19); it is nearly uncorrelated with DAG width and dataset size; block
size anti-correlates with grid dimension (~-0.78); GPU anti-correlates
with the measured parallel-fraction time.
"""

import pytest

from repro.core.experiments import run_fig11


def test_fig11_correlation(once):
    result = once(run_fig11)
    print()
    print(result.render())
    value = result.value

    # Signs of the paper's key cells.
    assert value("parallel_task_exec_time", "block_size") > 0.2
    assert value("parallel_task_exec_time", "computational_complexity") > 0.2
    assert value("parallel_task_exec_time", "parallel_fraction") > 0.2
    assert abs(value("parallel_task_exec_time", "dag_max_width")) < 0.35
    assert value("block_size", "grid_dimension") < -0.5
    assert value("gpu", "parallel_fraction") < 0.0
    assert value("cpu", "gpu") == pytest.approx(-1.0)
    assert value("shared_disk_storage", "local_disk_storage") == pytest.approx(-1.0)
    # Storage matters more than scheduling (paper §5.4.1 O5/O6 cells).
    storage_rho = abs(value("parallel_task_exec_time", "shared_disk_storage"))
    scheduling_rho = abs(
        value("parallel_task_exec_time", "task_gen_order_scheduling")
    )
    assert storage_rho > scheduling_rho
    # Additional finding (a): block size correlates more strongly with
    # execution time than dataset size does.
    assert value("parallel_task_exec_time", "block_size") > abs(
        value("parallel_task_exec_time", "dataset_size")
    )
