"""Property-based tests of the simulated executor's invariants.

Random workloads (task counts, dependency fan-out, cost profiles) are run
through the full simulation and checked against invariants that must hold
for *any* schedule the executor could produce:

* every task completes exactly once;
* the makespan respects both lower bounds (critical path, total work
  over capacity);
* stage records of one task are ordered and nested in the task record;
* two tasks never overlap on the same (node, core) slot;
* the simulation is deterministic.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.perfmodel import TaskCost
from repro.runtime import Runtime, RuntimeConfig
from repro.tracing import Trace

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

costs = st.builds(
    TaskCost,
    serial_flops=st.floats(min_value=0, max_value=5e10),
    parallel_flops=st.floats(min_value=0, max_value=5e11),
    parallel_items=st.floats(min_value=1e3, max_value=1e8),
    arithmetic_intensity=st.floats(min_value=0.01, max_value=100.0),
    input_bytes=st.integers(min_value=0, max_value=10**9),
    output_bytes=st.integers(min_value=0, max_value=10**8),
    host_device_bytes=st.integers(min_value=0, max_value=10**9),
    gpu_memory_bytes=st.integers(min_value=0, max_value=10 * 1024**3),
)


def _build_workflow(task_costs, chain_every):
    """A workflow mixing independent tasks with dependency chains."""
    rt = Runtime(RuntimeConfig(use_gpu=False))
    previous = None
    for i, cost in enumerate(task_costs):
        if previous is not None and chain_every and i % chain_every == 0:
            inputs = [previous]
        else:
            inputs = [rt.register_input(cost.input_bytes, name=f"in{i}")]
        (previous,) = rt.submit(name=f"t{i % 3}", inputs=inputs, cost=cost)
    return rt


class TestExecutorInvariants:
    @given(
        task_costs=st.lists(costs, min_size=1, max_size=30),
        chain_every=st.integers(min_value=0, max_value=4),
    )
    @settings(**_SETTINGS)
    def test_all_tasks_complete_exactly_once(self, task_costs, chain_every):
        rt = _build_workflow(task_costs, chain_every)
        result = rt.run()
        assert len(result.trace.tasks) == len(task_costs)
        assert len({t.task_id for t in result.trace.tasks}) == len(task_costs)

    @given(
        task_costs=st.lists(costs, min_size=2, max_size=20),
    )
    @settings(**_SETTINGS)
    def test_makespan_not_below_work_bound(self, task_costs):
        # Total serial+parallel compute over total cores is a hard floor.
        rt = _build_workflow(task_costs, chain_every=0)
        result = rt.run()
        cores = rt.config.cluster.total_cpu_cores
        from repro.perfmodel import CostModel

        model = CostModel(rt.config.cluster)
        total_compute = sum(
            model.serial_fraction_time(c) + model.parallel_fraction_time_cpu(c)
            for c in task_costs
        )
        assert result.makespan >= total_compute / cores - 1e-9

    @given(
        task_costs=st.lists(costs, min_size=2, max_size=15),
    )
    @settings(**_SETTINGS)
    def test_makespan_not_below_critical_path(self, task_costs):
        # Fully chained: the sum of compute times is a floor.
        rt = _build_workflow(task_costs, chain_every=1)
        result = rt.run()
        from repro.perfmodel import CostModel

        model = CostModel(rt.config.cluster)
        critical = sum(
            model.serial_fraction_time(c) + model.parallel_fraction_time_cpu(c)
            for c in task_costs
        )
        assert result.makespan >= critical - 1e-9

    @given(
        task_costs=st.lists(costs, min_size=1, max_size=20),
        chain_every=st.integers(min_value=0, max_value=3),
    )
    @settings(**_SETTINGS)
    def test_stage_records_nested_and_ordered(self, task_costs, chain_every):
        rt = _build_workflow(task_costs, chain_every)
        trace = rt.run().trace
        spans = {t.task_id: (t.start, t.end) for t in trace.tasks}
        by_task: dict[int, list] = {}
        for record in trace.stages:
            by_task.setdefault(record.task_id, []).append(record)
            start, end = spans[record.task_id]
            assert start - 1e-9 <= record.start <= record.end <= end + 1e-9
        for records in by_task.values():
            ordered = sorted(records, key=lambda r: r.start)
            for earlier, later in zip(ordered, ordered[1:]):
                assert earlier.end <= later.start + 1e-9

    @given(
        task_costs=st.lists(costs, min_size=2, max_size=25),
    )
    @settings(**_SETTINGS)
    def test_no_core_slot_double_booking(self, task_costs):
        rt = _build_workflow(task_costs, chain_every=0)
        trace = rt.run().trace
        by_slot: dict[tuple[int, int], list] = {}
        for task in trace.tasks:
            by_slot.setdefault((task.node, task.core), []).append(task)
        for tasks in by_slot.values():
            ordered = sorted(tasks, key=lambda t: t.start)
            for earlier, later in zip(ordered, ordered[1:]):
                assert earlier.end <= later.start + 1e-9

    @given(
        task_costs=st.lists(costs, min_size=1, max_size=15),
        chain_every=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_determinism(self, task_costs, chain_every):
        first = _build_workflow(task_costs, chain_every).run()
        second = _build_workflow(task_costs, chain_every).run()
        assert first.makespan == second.makespan
        assert _fingerprint(first.trace) == _fingerprint(second.trace)


def _fingerprint(trace: Trace):
    return [
        (r.task_id, r.stage, round(r.start, 9), round(r.end, 9))
        for r in trace.stages
    ]
