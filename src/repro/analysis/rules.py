"""The analyzer's rule set, one function per ``WFnnn`` diagnostic code.

Each rule inspects a :class:`RuleContext` — the task graph plus (when a
cluster was given) the :class:`~repro.perfmodel.CostModel` that maps
:class:`~repro.perfmodel.TaskCost` demands to stage durations — and
returns zero or more :class:`~repro.analysis.diagnostics.Diagnostic`
findings.  Rules never execute tasks: everything here is a function of
the DAG, the declared demands, and the cluster spec, which is what makes
the paper's headline failures (Figure 9a's "CPU GPU OOM", O1's
launch-overhead regime, O4's transfer-bound placements) predictable
before dispatch.

Findings are aggregated per task type so a 768-task sweep produces one
record per defect, not 768.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import register
from repro.hardware.specs import ClusterSpec
from repro.perfmodel.costmodel import CostModel
from repro.runtime.dag import CycleError, TaskGraph
from repro.runtime.task import Task

GIB = 1024**3


@dataclass(frozen=True)
class AnalysisOptions:
    """Tunable thresholds of the performance-smell rules."""

    #: WF201 fires when launch overhead is at least this share of the GPU
    #: parallel-fraction time (0.5 = overhead equals useful kernel work).
    launch_overhead_share: float = 0.5
    #: WF203 fires when the DAG width is below this share of the
    #: cluster's parallel slots.
    width_slot_share: float = 0.25
    #: Diagnostic codes suppressed for the whole analysis pass (the
    #: global counterpart of the per-task ``ignore=`` API).
    ignore: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not 0 < self.launch_overhead_share <= 1:
            raise ValueError("launch_overhead_share must be in (0, 1]")
        if not 0 < self.width_slot_share <= 1:
            raise ValueError("width_slot_share must be in (0, 1]")
        object.__setattr__(self, "ignore", frozenset(self.ignore))


@dataclass(frozen=True)
class RuleContext:
    """Everything a rule may inspect."""

    graph: TaskGraph
    cluster: ClusterSpec | None = None
    cost_model: CostModel | None = None
    use_gpu: bool = False
    #: Backend the workflow targets ("simulated", "in_process",
    #: "threaded") or ``None`` for backend-agnostic analysis.
    backend: str | None = "simulated"
    #: Ref ids the application keeps as workflow results, or ``None``
    #: when unknown (the dead-task rule then only flags interior tasks).
    returned_ref_ids: frozenset[int] | None = None
    #: Fault plan the run would inject (``None`` = fault-free), for the
    #: WF3xx resilience rules.
    fault_plan: object | None = None
    #: Recovery policy the run would apply; ``None`` means the executor's
    #: default (which does retry).
    retry_policy: object | None = None
    #: Checkpoint policy the run would apply (``None`` = no checkpoints),
    #: for the lineage-depth rule WF303.
    checkpoint_policy: object | None = None
    options: AnalysisOptions = field(default_factory=AnalysisOptions)


Rule = Callable[[RuleContext], list[Diagnostic]]


def all_rules() -> list[tuple[str, Rule]]:
    """Every registered workflow rule as (code, function), ordered by code.

    Backed by the pluggable registry of
    :mod:`repro.analysis.registry`, which also covers the ``WF4xx``
    race rules of :mod:`repro.analysis.races`.
    """
    from repro.analysis.registry import workflow_rules

    return workflow_rules()


# --------------------------------------------------------------- helpers
def _gib(num_bytes: float) -> str:
    return f"{num_bytes / GIB:.1f} GiB"


def _grouped(tasks: list[Task]) -> dict[str, list[Task]]:
    groups: dict[str, list[Task]] = {}
    for task in tasks:
        groups.setdefault(task.name, []).append(task)
    return groups


def _ids(tasks: list[Task]) -> tuple[int, ...]:
    return tuple(t.task_id for t in tasks)


# --------------------------------------------------- WF0xx: graph hazards
@register("WF001", severity=Severity.ERROR, category="graph")
def check_cycles(ctx: RuleContext) -> list[Diagnostic]:
    """WF001 — the dependency graph must be acyclic."""
    graph = ctx.graph
    try:
        graph.topological_order()
        return []
    except CycleError:
        pass
    indegree = {t.task_id: 0 for t in graph.tasks()}
    for _, consumer in graph.edges():
        indegree[consumer] += 1
    frontier = [t for t, d in indegree.items() if d == 0]
    while frontier:
        task_id = frontier.pop()
        for successor in graph.successors(task_id):
            indegree[successor.task_id] -= 1
            if indegree[successor.task_id] == 0:
                frontier.append(successor.task_id)
    stuck = tuple(sorted(t for t, d in indegree.items() if d > 0))
    return [
        Diagnostic(
            code="WF001",
            severity=Severity.ERROR,
            message="task dependencies form a cycle; no schedule can run them",
            task_ids=stuck,
            hint="break the cycle: no task may (transitively) consume its "
            "own output",
        )
    ]


@register("WF002", severity=Severity.ERROR, category="graph")
def check_duplicate_producers(ctx: RuleContext) -> list[Diagnostic]:
    """WF002 — every data ref must have exactly one producer."""
    producer_of: dict[int, int] = {}
    findings: list[Diagnostic] = []
    for task in ctx.graph.tasks():
        for ref in task.outputs:
            first = producer_of.setdefault(ref.ref_id, task.task_id)
            if first != task.task_id:
                findings.append(
                    Diagnostic(
                        code="WF002",
                        severity=Severity.ERROR,
                        message=(
                            f"ref #{ref.ref_id} ({ref.name or 'unnamed'}) is "
                            f"produced by both task #{first} and task "
                            f"#{task.task_id}; consumers would silently bind "
                            "to the later producer"
                        ),
                        task_ids=(first, task.task_id),
                        task_type=task.name,
                        hint="give each task its own output refs; "
                        "TaskGraph.add_task raises DuplicateProducerError "
                        "for this at build time",
                    )
                )
    return findings


@register("WF003", severity=Severity.ERROR, category="graph")
def check_self_dependency(ctx: RuleContext) -> list[Diagnostic]:
    """WF003 — a task must not consume its own output."""
    self_edges = {src for src, dst in ctx.graph.edges() if src == dst}
    offenders = []
    for task in ctx.graph.tasks():
        out_ids = {ref.ref_id for ref in task.outputs}
        if task.task_id in self_edges or any(
            ref.ref_id in out_ids for ref in task.inputs
        ):
            offenders.append(task)
    if not offenders:
        return []
    return [
        Diagnostic(
            code="WF003",
            severity=Severity.ERROR,
            message=f"{len(offenders)} task(s) consume their own output; "
            "such a task can never become ready",
            task_ids=_ids(offenders),
            task_type=offenders[0].name if len(_grouped(offenders)) == 1 else "",
            hint="feed the task a ref produced by another task (or a "
            "workflow input) instead",
        )
    ]


@register("WF004", severity=Severity.WARNING, category="graph")
def check_duplicate_edges(ctx: RuleContext) -> list[Diagnostic]:
    """WF004 — at most one dependency edge between any two tasks."""
    duplicated = [
        edge for edge, count in Counter(ctx.graph.edges()).items() if count > 1
    ]
    if not duplicated:
        return []
    consumers = tuple(sorted({dst for _, dst in duplicated}))
    pairs = ", ".join(f"#{src}->#{dst}" for src, dst in sorted(duplicated)[:5])
    return [
        Diagnostic(
            code="WF004",
            severity=Severity.WARNING,
            message=f"{len(duplicated)} dependency edge(s) are duplicated "
            f"({pairs}); num_edges and DOT exports over-count",
            task_ids=consumers,
            hint="TaskGraph.add_task dedupes edges since this rule was "
            "introduced; rebuild hand-wired graphs through add_task",
        )
    ]


@register("WF005", severity=Severity.WARNING, category="graph")
def check_dead_tasks(ctx: RuleContext) -> list[Diagnostic]:
    """WF005 — every task's outputs should be consumed or returned."""
    graph = ctx.graph
    try:
        levels = graph.levels()
    except CycleError:
        return []  # WF001 already covers an unschedulable graph
    if not levels:
        return []
    max_level = max(levels.values())
    consumed = {
        ref.ref_id for task in graph.tasks() for ref in task.inputs
    }
    returned = ctx.returned_ref_ids
    dead: list[Task] = []
    for task in graph.tasks():
        if not task.outputs:
            continue  # side-effect sink tasks have nothing to consume
        if any(ref.ref_id in consumed for ref in task.outputs):
            continue
        if returned is not None:
            if any(ref.ref_id in returned for ref in task.outputs):
                continue
        elif levels[task.task_id] == max_level:
            # Without knowing which refs the application keeps, final-level
            # tasks are presumed to carry the workflow's results.
            continue
        dead.append(task)
    findings = []
    for name, tasks in _grouped(dead).items():
        findings.append(
            Diagnostic(
                code="WF005",
                severity=Severity.WARNING,
                message=f"{len(tasks)} {name!r} task(s) produce outputs that "
                "no task consumes and the workflow never returns; their work "
                "is wasted",
                task_ids=_ids(tasks),
                task_type=name,
                hint="drop the tasks, or consume/return their outputs",
            )
        )
    return findings


@register("WF006", severity=Severity.WARNING, category="graph")
def check_missing_costs(ctx: RuleContext) -> list[Diagnostic]:
    """WF006 — the simulated backend needs a TaskCost per task."""
    if ctx.backend not in (None, "simulated"):
        return []  # real-execution backends run the actual function
    missing = [t for t in ctx.graph.tasks() if t.cost is None]
    findings = []
    for name, tasks in _grouped(missing).items():
        findings.append(
            Diagnostic(
                code="WF006",
                severity=Severity.WARNING,
                message=f"{len(tasks)} {name!r} task(s) have no TaskCost; the "
                "simulated backend will run them with zero-duration stages, "
                "skewing every timing metric",
                task_ids=_ids(tasks),
                task_type=name,
                hint="pass _cost= (task decorator) or cost= (Runtime.submit)",
            )
        )
    return findings


@register("WF007", severity=Severity.WARNING, category="graph")
def check_unreachable_tasks(ctx: RuleContext) -> list[Diagnostic]:
    """WF007 — a task disconnected from the rest of the DAG.

    Fires for tasks with zero in-degree *and* zero out-degree in a
    workflow that otherwise has dependency structure: such a task is
    usually a build() leftover (an operand registered but never wired
    in).  Tasks whose outputs the application declares as returned are
    exempt — an intentionally independent side computation is fine.
    """
    graph = ctx.graph
    if graph.num_tasks < 2 or not graph.edges():
        return []  # a trivial or fully independent workflow has no "rest"
    returned = ctx.returned_ref_ids or frozenset()
    isolated = [
        task
        for task in graph.tasks()
        if not graph.predecessors(task.task_id)
        and not graph.successors(task.task_id)
        and not any(ref.ref_id in returned for ref in task.outputs)
    ]
    findings = []
    for name, tasks in _grouped(isolated).items():
        findings.append(
            Diagnostic(
                code="WF007",
                severity=Severity.WARNING,
                message=f"{len(tasks)} {name!r} task(s) are disconnected from "
                "the rest of the DAG (no predecessors, no successors, outputs "
                "never returned); they burn a core without contributing to "
                "the workflow's results",
                task_ids=_ids(tasks),
                task_type=name,
                hint="wire the task into the DAG, return its outputs, or "
                "drop it",
            )
        )
    return findings


@register("WF008", severity=Severity.WARNING, category="graph")
def check_zero_cost_tasks(ctx: RuleContext) -> list[Diagnostic]:
    """WF008 — a TaskCost whose every stage simulates as zero.

    Distinct from WF006 (no cost at all): here a cost *was* declared but
    all of its duration-bearing fields are zero, so the simulated stages
    collapse to instants.  That silently skews every timing metric the
    same way a missing cost does, while looking intentional.
    """
    if ctx.backend not in (None, "simulated"):
        return []  # real-execution backends run the actual function
    zero = [
        t
        for t in ctx.graph.tasks()
        if t.cost is not None
        and t.cost.serial_flops == 0
        and t.cost.parallel_flops == 0
        and t.cost.input_bytes == 0
        and t.cost.output_bytes == 0
        and t.cost.host_device_bytes == 0
    ]
    findings = []
    for name, tasks in _grouped(zero).items():
        findings.append(
            Diagnostic(
                code="WF008",
                severity=Severity.WARNING,
                message=f"{len(tasks)} {name!r} task(s) declare a TaskCost "
                "whose every duration-bearing field is zero; the simulated "
                "backend runs them as zero-duration stages, skewing every "
                "timing metric",
                task_ids=_ids(tasks),
                task_type=name,
                hint="declare the real demands, or submit with cost=None if "
                "the task is a pure bookkeeping step",
            )
        )
    return findings


# ---------------------------------------------------- WF1xx: feasibility
@register("WF101", severity=Severity.ERROR, category="feasibility")
def check_host_memory(ctx: RuleContext) -> list[Diagnostic]:
    """WF101 — per-task host working set vs node RAM (Figure 9a)."""
    if ctx.cluster is None:
        return []
    ram = ctx.cluster.node.ram_bytes
    offenders = [
        t
        for t in ctx.graph.tasks()
        if t.cost is not None and t.cost.host_memory_bytes > ram
    ]
    findings = []
    for name, tasks in _grouped(offenders).items():
        worst = max(t.cost.host_memory_bytes for t in tasks)
        findings.append(
            Diagnostic(
                code="WF101",
                severity=Severity.ERROR,
                message=(
                    f"{len(tasks)} {name!r} task(s) need up to {_gib(worst)} "
                    f"of host RAM but a node has {_gib(ram)}; execution "
                    "would abort with HostOutOfMemoryError on CPUs and GPUs "
                    "alike (the paper's 'CPU GPU OOM', Figure 9a)"
                ),
                task_ids=_ids(tasks),
                task_type=name,
                hint="shrink the working set: smaller blocks (larger grid) "
                "or fewer clusters/features per task",
            )
        )
    return findings


def _gpu_tasks(ctx: RuleContext) -> list[Task]:
    """GPU-eligible tasks with costs, when a GPU run targets a GPU cluster."""
    if ctx.cluster is None or not ctx.use_gpu or not ctx.cluster.has_gpus:
        return []
    return [t for t in ctx.graph.tasks() if t.gpu_eligible and t.cost is not None]


@register("WF102", severity=Severity.ERROR, category="feasibility")
def check_gpu_memory(ctx: RuleContext) -> list[Diagnostic]:
    """WF102 — per-task device working set vs GPU memory (Figure 9a)."""
    if ctx.cluster is None:
        return []
    device = ctx.cluster.node.gpu
    offenders = [
        t
        for t in _gpu_tasks(ctx)
        if t.cost.gpu_memory_bytes > device.memory_bytes
    ]
    findings = []
    for name, tasks in _grouped(offenders).items():
        worst = max(t.cost.gpu_memory_bytes for t in tasks)
        findings.append(
            Diagnostic(
                code="WF102",
                severity=Severity.ERROR,
                message=(
                    f"{len(tasks)} {name!r} task(s) need up to {_gib(worst)} "
                    f"of device memory but {device.name} has "
                    f"{_gib(device.memory_bytes)}; GPU execution would abort "
                    "with GpuOutOfMemoryError (the paper's 'GPU OOM')"
                ),
                task_ids=_ids(tasks),
                task_type=name,
                hint="use smaller blocks (larger grid) or run these tasks "
                "on CPUs (gpu_task_types=)",
            )
        )
    return findings


@register("WF103", severity=Severity.ERROR, category="feasibility")
def check_gpu_available(ctx: RuleContext) -> list[Diagnostic]:
    """WF103 — a GPU run needs a cluster that has GPU devices."""
    if ctx.cluster is None or not ctx.use_gpu or ctx.cluster.has_gpus:
        return []
    eligible = [t for t in ctx.graph.tasks() if t.gpu_eligible]
    if not eligible:
        return []
    return [
        Diagnostic(
            code="WF103",
            severity=Severity.ERROR,
            message=(
                f"GPU execution requested but cluster "
                f"{ctx.cluster.name!r} has no GPU devices; "
                f"{len(eligible)} GPU-eligible task(s) cannot be placed"
            ),
            task_ids=_ids(eligible),
            hint="run with use_gpu=False, or pick a preset with devices "
            "(minotauro, modern)",
        )
    ]


@register("WF104", severity=Severity.WARNING, category="feasibility")
def check_output_blocks_fit_gpu(ctx: RuleContext) -> list[Diagnostic]:
    """WF104 — each produced block should fit one GPU device's memory."""
    if ctx.cluster is None:
        return []
    device = ctx.cluster.node.gpu
    offenders: list[Task] = []
    worst = 0
    for task in _gpu_tasks(ctx):
        oversized = max(
            (ref.size_bytes for ref in task.outputs), default=0
        )
        if oversized > device.memory_bytes:
            offenders.append(task)
            worst = max(worst, oversized)
    findings = []
    for name, tasks in _grouped(offenders).items():
        findings.append(
            Diagnostic(
                code="WF104",
                severity=Severity.WARNING,
                message=(
                    f"{len(tasks)} {name!r} task(s) produce a block of up to "
                    f"{_gib(worst)}, larger than one {device.name} "
                    f"({_gib(device.memory_bytes)}); the result cannot stay "
                    "device-resident and must stream back over PCIe"
                ),
                task_ids=_ids(tasks),
                task_type=name,
                hint="use smaller output blocks (larger grid)",
            )
        )
    return findings


# ----------------------------------------------- WF2xx: performance smells
@register("WF201", severity=Severity.WARNING, category="performance")
def check_launch_overhead(ctx: RuleContext) -> list[Diagnostic]:
    """WF201 — tiny kernels where launch overhead dominates (O1)."""
    model = ctx.cost_model
    if model is None:
        return []
    launch = model.gpu.launch_overhead
    if launch <= 0:
        return []
    share = ctx.options.launch_overhead_share
    offenders = []
    for task in _gpu_tasks(ctx):
        if task.cost.parallel_flops <= 0:
            continue
        total = model.parallel_fraction_time_gpu(task.cost)
        if total > 0 and launch / total >= share:
            offenders.append(task)
    findings = []
    for name, tasks in _grouped(offenders).items():
        findings.append(
            Diagnostic(
                code="WF201",
                severity=Severity.WARNING,
                message=(
                    f"{len(tasks)} {name!r} kernel(s) are so small that "
                    f"launch overhead ({launch * 1e6:.0f} us) is >= "
                    f"{share:.0%} of their GPU parallel fraction; the GPU "
                    "cannot pay off at this granularity (the paper's O1)"
                ),
                task_ids=_ids(tasks),
                task_type=name,
                hint="use larger blocks (smaller grid) so each kernel does "
                "more work per launch",
            )
        )
    return findings


@register("WF202", severity=Severity.WARNING, category="performance")
def check_transfer_bound(ctx: RuleContext) -> list[Diagnostic]:
    """WF202 — PCIe transfer time exceeds modeled kernel time (O4)."""
    model = ctx.cost_model
    if model is None:
        return []
    offenders = []
    for task in _gpu_tasks(ctx):
        if task.cost.host_device_bytes <= 0 or task.cost.parallel_flops <= 0:
            continue
        comm = model.cpu_gpu_comm_time(task.cost)
        kernel = model.parallel_fraction_time_gpu(task.cost)
        if comm > kernel:
            offenders.append(task)
    findings = []
    for name, tasks in _grouped(offenders).items():
        findings.append(
            Diagnostic(
                code="WF202",
                severity=Severity.WARNING,
                message=(
                    f"{len(tasks)} {name!r} task(s) spend longer moving data "
                    "over PCIe than computing on the device; GPU placement "
                    "is transfer-bound (the paper's O4)"
                ),
                task_ids=_ids(tasks),
                task_type=name,
                hint="keep these tasks on CPUs (gpu_task_types=), raise "
                "arithmetic intensity, or enable comm_overlap",
            )
        )
    return findings


@register("WF203", severity=Severity.INFO, category="performance")
def check_dag_width(ctx: RuleContext) -> list[Diagnostic]:
    """WF203 — the DAG should be wide enough to fill the cluster."""
    if ctx.cluster is None or ctx.graph.num_tasks <= 1:
        return []
    try:
        width = ctx.graph.width
    except CycleError:
        return []
    slots = ctx.cluster.parallel_slots(ctx.use_gpu)
    threshold = slots * ctx.options.width_slot_share
    if slots <= 0 or width >= threshold:
        return []
    kind = "GPU devices" if ctx.use_gpu else "CPU cores"
    return [
        Diagnostic(
            code="WF203",
            severity=Severity.INFO,
            message=(
                f"DAG width {width} uses under {ctx.options.width_slot_share:.0%} "
                f"of the cluster's {slots} {kind}; most of the cluster will "
                "sit idle"
            ),
            hint="use a finer grid (more blocks) or a smaller cluster",
        )
    ]


# --------------------------------------------------- WF3xx: resilience
@register("WF301", severity=Severity.WARNING, category="resilience")
def check_retries_disabled(ctx: RuleContext) -> list[Diagnostic]:
    """WF301 — an injecting fault plan with retries turned off.

    Only fires when a retry policy was *explicitly* configured with a
    single-attempt budget; with no policy the executor's default (which
    retries) applies.
    """
    plan = ctx.fault_plan
    policy = ctx.retry_policy
    if plan is None or getattr(plan, "is_empty", True):
        return []
    if policy is None or getattr(policy, "max_attempts", 2) > 1:
        return []
    return [
        Diagnostic(
            code="WF301",
            severity=Severity.WARNING,
            message=(
                "the fault plan injects failures but retry_policy allows "
                "only one attempt per task; any injected fault fails the "
                "task (and its dependents) permanently"
            ),
            hint="raise RetryPolicy(max_attempts=...) above 1, or drop the "
            "fault plan",
        )
    ]


@register("WF302", severity=Severity.ERROR, category="resilience")
def check_fault_nodes_exist(ctx: RuleContext) -> list[Diagnostic]:
    """WF302 — node faults must name nodes the cluster actually has."""
    plan = ctx.fault_plan
    if plan is None or ctx.cluster is None:
        return []
    bad = sorted(
        {
            fault.node
            for fault in getattr(plan, "node_faults", ())
            if fault.node >= ctx.cluster.num_nodes
        }
    )
    if not bad:
        return []
    nodes = ", ".join(str(n) for n in bad)
    return [
        Diagnostic(
            code="WF302",
            severity=Severity.ERROR,
            message=(
                f"the fault plan kills node(s) {nodes} but the cluster has "
                f"{ctx.cluster.num_nodes} node(s) (valid indices 0-"
                f"{ctx.cluster.num_nodes - 1}); the executor refuses to start"
            ),
            hint="point node faults at existing node indices or grow "
            "the cluster (num_nodes=)",
        )
    ]


@register("WF303", severity=Severity.WARNING, category="resilience")
def check_unprotected_barriers(ctx: RuleContext) -> list[Diagnostic]:
    """WF303 — node faults can destroy the only replica of a barrier output.

    A barrier task (a single-task DAG level whose outputs feed later
    work) produces blocks with exactly one replica, on whichever node ran
    it.  With node faults planned and no checkpoint policy, losing that
    node either fails every dependent (recovery off) or forces lineage
    recomputation to walk back through the barrier and re-run everything
    behind it (recovery on).  A checkpoint at the barrier bounds both.
    """
    plan = ctx.fault_plan
    if plan is None or getattr(plan, "is_empty", True):
        return []
    if not getattr(plan, "node_faults", ()):
        return []
    if ctx.checkpoint_policy is not None:
        return []
    graph = ctx.graph
    try:
        levels = graph.levels()
    except CycleError:
        return []  # WF001 already covers an unschedulable graph
    if not levels:
        return []
    max_level = max(levels.values())
    width_of: dict[int, int] = {}
    for task_id, level in levels.items():
        width_of[level] = width_of.get(level, 0) + 1
    consumed = {ref.ref_id for task in graph.tasks() for ref in task.inputs}
    barriers = [
        task
        for task in graph.tasks()
        if width_of[levels[task.task_id]] == 1
        and levels[task.task_id] < max_level
        and any(ref.ref_id in consumed for ref in task.outputs)
    ]
    if not barriers:
        return []
    return [
        Diagnostic(
            code="WF303",
            severity=Severity.WARNING,
            message=(
                f"the fault plan kills node(s) while {len(barriers)} barrier "
                "task(s) (single-task DAG levels) produce the only replica "
                "of blocks that later levels consume; losing that node "
                "fails the dependents or forces recomputation past the "
                "barrier"
            ),
            task_ids=_ids(barriers),
            hint="set checkpoint_policy (e.g. CheckpointPolicy("
            "task_types={...}) naming the barrier types) so recovery "
            "restarts from shared storage instead",
        )
    ]


@register("WF304", severity=Severity.WARNING, category="resilience")
def check_speculation_needs_nodes(ctx: RuleContext) -> list[Diagnostic]:
    """WF304 — speculative re-execution needs a second node.

    Backup attempts always launch on a *different* node than the watched
    primary, so on a single-node cluster the speculation knobs are dead
    configuration: the watchdog arms, finds no other node, and never
    launches anything.
    """
    policy = ctx.retry_policy
    if policy is None or getattr(policy, "speculation_factor", None) is None:
        return []
    if ctx.cluster is None or ctx.cluster.num_nodes > 1:
        return []
    return [
        Diagnostic(
            code="WF304",
            severity=Severity.WARNING,
            message=(
                "speculation_factor is set but the cluster has a single "
                "node; speculative backups must run on a different node "
                "than the primary, so no backup can ever launch"
            ),
            hint="grow the cluster (num_nodes >= 2) or drop "
            "speculation_factor",
        )
    ]
