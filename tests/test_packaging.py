"""Packaging sanity: metadata, versioning, and public API surface."""

from pathlib import Path

import pytest

import repro

REPO = Path(__file__).resolve().parent.parent


class TestMetadata:
    def test_version_matches_pyproject(self):
        pyproject = (REPO / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject

    def test_license_file_present(self):
        text = (REPO / "LICENSE").read_text()
        assert "Apache License" in text

    def test_py_typed_marker(self):
        assert (REPO / "src" / "repro" / "py.typed").exists()


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_sorted_for_readability(self):
        assert list(repro.__all__) == sorted(repro.__all__)

    def test_subpackage_exports_resolve(self):
        import repro.core as core
        import repro.hardware as hardware
        import repro.runtime as runtime
        import repro.sim as sim
        import repro.tracing as tracing

        for module in (core, hardware, runtime, sim, tracing):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_headline_types_importable_from_root(self):
        from repro import (
            CostModel,
            DistributedArray,
            KMeansWorkflow,
            MatmulWorkflow,
            Runtime,
            RuntimeConfig,
            TaskCost,
        )

        assert all(
            (CostModel, DistributedArray, KMeansWorkflow, MatmulWorkflow,
             Runtime, RuntimeConfig, TaskCost)
        )


class TestRepoLayout:
    @pytest.mark.parametrize(
        "path",
        [
            "DESIGN.md",
            "EXPERIMENTS.md",
            "README.md",
            "CONTRIBUTING.md",
            "docs/architecture.md",
            "scripts/regenerate_results.sh",
            "examples/README.md",
        ],
    )
    def test_expected_files_exist(self, path):
        assert (REPO / path).exists(), path

    def test_no_stray_top_level_modules(self):
        # Everything importable lives under src/repro.
        sources = {p.name for p in (REPO / "src").iterdir()}
        assert sources == {"repro", "repro.egg-info"} or sources == {"repro"}
