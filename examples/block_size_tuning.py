"""Block-size tuning study: the paper's central trade-off, as a user tool.

Sweeps the block dimension for a Matmul workload and reports, per block
size, the stage-level speedups and the distributed parallel-task time —
then recommends the block size a practitioner should pick for each
processor type.  This is the workflow-developer scenario from the paper's
introduction: instead of exhaustively rerunning workloads on the real
cluster, sweep the simulator.

Run:  python examples/block_size_tuning.py [dataset_key]
"""

import sys

from repro import MatmulWorkflow, Runtime, RuntimeConfig, paper_datasets
from repro.core.report import Table, format_seconds, format_speedup
from repro.hardware import GpuOutOfMemoryError, HostOutOfMemoryError
from repro.tracing import parallel_task_metrics, user_code_metrics


def measure(dataset, grid, use_gpu):
    workflow = MatmulWorkflow(dataset, grid=grid)
    runtime = Runtime(RuntimeConfig(use_gpu=use_gpu))
    workflow.build(runtime)
    try:
        result = runtime.run()
    except (GpuOutOfMemoryError, HostOutOfMemoryError):
        return None
    return {
        "user_code": user_code_metrics(result.trace)["matmul_func"].user_code,
        "parallel_tasks": parallel_task_metrics(
            result.trace, set(workflow.parallel_task_types)
        ).average_parallel_time,
        "block_mb": workflow.block_mb,
    }


def main():
    dataset_key = sys.argv[1] if len(sys.argv) > 1 else "matmul_8gb"
    dataset = paper_datasets()[dataset_key]
    table = Table(
        title=f"Block-size tuning for Matmul on {dataset_key}",
        headers=(
            "grid",
            "block MB",
            "CPU P.Task",
            "GPU P.Task",
            "P.Task speedup",
            "Usr.Code speedup",
        ),
    )
    best = {"cpu": None, "gpu": None}
    for grid in (16, 8, 4, 2, 1):
        cpu = measure(dataset, grid, use_gpu=False)
        gpu = measure(dataset, grid, use_gpu=True)
        if cpu is None:
            table.add_row(f"{grid}x{grid}", "-", "CPU OOM", "-", "-", "-")
            continue
        if best["cpu"] is None or cpu["parallel_tasks"] < best["cpu"][1]:
            best["cpu"] = (grid, cpu["parallel_tasks"])
        if gpu is None:
            table.add_row(
                f"{grid}x{grid}",
                f"{cpu['block_mb']:.0f}",
                format_seconds(cpu["parallel_tasks"]),
                "GPU OOM",
                "-",
                "-",
            )
            continue
        if best["gpu"] is None or gpu["parallel_tasks"] < best["gpu"][1]:
            best["gpu"] = (grid, gpu["parallel_tasks"])
        table.add_row(
            f"{grid}x{grid}",
            f"{cpu['block_mb']:.0f}",
            format_seconds(cpu["parallel_tasks"]),
            format_seconds(gpu["parallel_tasks"]),
            format_speedup(cpu["parallel_tasks"] / gpu["parallel_tasks"]),
            format_speedup(cpu["user_code"] / gpu["user_code"]),
        )
    print(table.render())
    print()
    for processor, choice in best.items():
        if choice:
            print(
                f"recommended grid for {processor.upper()}: "
                f"{choice[0]}x{choice[0]} "
                f"(parallel-task time {format_seconds(choice[1])})"
            )
    print(
        "\nHigher granularity maximises per-task GPU speedup but starves "
        "task parallelism;\nthe sweet spot balances both — the paper's "
        "central observation."
    )


if __name__ == "__main__":
    main()
