"""Meta-benchmark — the simulator's own throughput.

Unlike the figure benches (which measure *simulated* time), this suite
measures the wall-clock cost of running the discrete-event simulation,
as a regression guard over the fast dispatch path.  It runs the same
fixed three-workload matrix as ``python -m repro bench``
(:func:`repro.bench.bench_workloads`) and enforces a throughput floor
per workload:

* ``matmul16`` — the heaviest single configuration in the figure suite
  (7936 tasks with full storage contention).  The floor sits at 3x the
  pre-optimisation guard: incremental ready sets + memoized cost-model
  evaluation must keep paying for themselves.
* ``kmeans_deep`` — many short levels; guards the completion-event and
  ready-set churn path.
* ``wide_dag`` — wide levels under the data-locality policy; guards the
  indexed O(nodes) placement scoring.

Floors are conservative (CI machines are noisy); an order-of-magnitude
regression — e.g. locality dispatch sliding back to
O(ready x nodes x inputs) — still trips them reliably.
"""

import pytest

from repro.bench import bench_workloads

#: Minimum accepted throughput (tasks per wall-clock second) per workload.
#: ``matmul16`` ran at ~500 tasks/s before the fast dispatch path landed;
#: the indexed/memoized simulator clears 3x that with margin to spare.
RATE_FLOORS = {
    "matmul16": 1500,
    "kmeans_deep": 1500,
    "wide_dag": 1500,
}

#: Expected task counts — a silent workload change would quietly re-base
#: the floors, so pin the matrix shape too.
TASK_COUNTS = {
    "matmul16": 7936,
    "kmeans_deep": 520,
    "wide_dag": 1537,
}

WORKLOADS = {workload.name: workload for workload in bench_workloads()}


def test_matrix_matches_floors():
    assert sorted(WORKLOADS) == sorted(RATE_FLOORS) == sorted(TASK_COUNTS)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_simulator_throughput(benchmark, name):
    workload = WORKLOADS[name]

    def run():
        return workload.run_once()

    tasks, elapsed, _makespan = benchmark.pedantic(run, rounds=1, iterations=1)
    rate = tasks / elapsed
    print(f"\n{name}: simulated {tasks} tasks in {elapsed:.2f}s wall "
          f"({rate:,.0f} tasks/s)")
    assert tasks == TASK_COUNTS[name]
    assert rate > RATE_FLOORS[name]
