"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures`` — regenerate any paper figure/table as an ASCII table;
* ``run`` — execute one workflow configuration and print its metrics
  (optionally with an ASCII Gantt of the execution trace);
* ``advise`` — search configurations for a workload and print a ranked
  recommendation (the §5.4.3 automated-design method);
* ``observations`` — re-verify the paper's observations O1-O6;
* ``lint`` — statically analyze a workload/preset combination without
  executing it, printing ``WFnnn`` diagnostics (text or JSON) and exiting
  non-zero when errors (e.g. a predicted host OOM) are found;
* ``devlint`` — lint repro's own Python source for nondeterminism
  patterns (``DLnnn``: unsorted set iteration, address-based tie-breaks,
  unseeded RNGs, ...), gated on a committed baseline file;
* ``bench`` — measure the simulator's own wall-clock throughput over a
  fixed workload matrix and write ``BENCH_simulator.json``;
* ``info`` — show the simulated cluster and calibration constants.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.algorithms import KMeansWorkflow, MatmulFmaWorkflow, MatmulWorkflow
from repro.core.report import Table, format_seconds
from repro.data import paper_datasets
from repro.hardware import StorageKind, cluster_presets, minotauro
from repro.runtime import SchedulingPolicy

_FIGURES = (
    "fig1",
    "fig6",
    "fig7",
    "fig8",
    "fig9a",
    "fig9b",
    "fig10",
    "fig11",
    "fig12",
    "table1",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Performance Analysis of Distributed "
            "GPU-Accelerated Task-Based Workflows' (EDBT 2024)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate paper figures/tables")
    figures.add_argument("which", choices=_FIGURES + ("all",))
    figures.add_argument(
        "--save",
        metavar="DIR",
        help="also write each result as JSON into this directory",
    )
    figures.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweep cells (default: CPU count)",
    )
    figures.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="sweep result cache location (default: ~/.cache/repro/sweeps)",
    )
    figures.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk sweep result cache",
    )
    figures.add_argument(
        "--resume",
        action="store_true",
        help="replay the execution ledger first and re-run only cells "
             "that were unfinished when the previous run died",
    )

    run = sub.add_parser("run", help="execute one workflow configuration")
    run.add_argument("--algorithm", choices=("matmul", "matmul_fma", "kmeans"),
                     default="kmeans")
    run.add_argument("--dataset", default="kmeans_10gb",
                     help="a key of repro.data.paper_datasets()")
    run.add_argument("--grid", type=int, default=64,
                     help="grid size (gxg for matmul, gx1 for kmeans)")
    run.add_argument("--clusters", type=int, default=10)
    run.add_argument("--iterations", type=int, default=3)
    run.add_argument("--gpu", action="store_true")
    run.add_argument("--storage", choices=("local", "shared"), default="shared")
    run.add_argument(
        "--policy",
        choices=("generation_order", "data_locality", "lifo"),
        default="generation_order",
    )
    run.add_argument("--gantt", action="store_true",
                     help="print an ASCII Gantt of the trace")
    run.add_argument(
        "--faults",
        metavar="SPEC",
        help="inject failures: a FaultPlan as inline JSON, or @file.json",
    )
    run.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="retry budget per task when --faults is given",
    )
    run.add_argument(
        "--recover",
        action="store_true",
        help="recompute blocks lost to node failures via DAG lineage",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint task outputs to shared storage every N DAG levels",
    )
    run.add_argument(
        "--speculate",
        type=float,
        default=None,
        metavar="FACTOR",
        help="launch a backup copy of any attempt running FACTOR x the "
             "median duration of its task type",
    )
    run.add_argument(
        "--sanitize",
        action="store_true",
        help="replay the trace through the dynamic sanitizer afterwards; "
             "exit 2 if any execution invariant was violated",
    )

    advise = sub.add_parser("advise", help="recommend a configuration")
    advise.add_argument("--algorithm", choices=("matmul", "kmeans"),
                        default="kmeans")
    advise.add_argument("--dataset", default="kmeans_10gb")
    advise.add_argument("--grids", default="256,64,16,4",
                        help="comma-separated grid sizes to search")
    advise.add_argument("--clusters", type=int, default=10)

    sub.add_parser("observations", help="re-verify observations O1-O6")
    sub.add_parser("info", help="show cluster model and calibration")

    lint = sub.add_parser(
        "lint",
        help="statically analyze a workflow configuration without running it",
    )
    lint.add_argument("--algorithm", choices=("matmul", "matmul_fma", "kmeans"),
                      default="kmeans")
    lint.add_argument("--dataset", default="kmeans_10gb",
                      help="a key of repro.data.paper_datasets()")
    lint.add_argument("--grid", type=int, default=64,
                      help="grid size (gxg for matmul, gx1 for kmeans)")
    lint.add_argument("--clusters", type=int, default=10)
    lint.add_argument("--iterations", type=int, default=3)
    lint.add_argument("--gpu", action="store_true",
                      help="lint for GPU execution")
    lint.add_argument(
        "--preset",
        choices=tuple(sorted(cluster_presets())),
        default="minotauro",
        help="cluster preset to check feasibility against",
    )
    lint.add_argument("--nodes", type=int, default=8,
                      help="number of cluster nodes")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="output format")

    devlint = sub.add_parser(
        "devlint",
        help="lint Python sources for nondeterminism patterns (DLnnn)",
    )
    devlint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    devlint.add_argument("--format", choices=("text", "json"), default="text",
                         help="output format")
    devlint.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline file of accepted findings; only new findings fail",
    )
    devlint.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file with the current findings and exit 0",
    )

    bench = sub.add_parser(
        "bench",
        help="measure simulator throughput over the fixed workload matrix",
    )
    bench.add_argument(
        "--suite",
        choices=("simulator", "sweeps", "faults", "scale", "chaos"),
        default="simulator",
        help="simulator: raw dispatch throughput; sweeps: engine "
             "cold/warm cells-per-second; faults: node-loss recovery "
             "cost per workload; scale: 10^5..10^6-task replay floors; "
             "chaos: sharded replays under seeded worker kills/hangs/"
             "slowdowns, checked bit-identical to serial "
             "(default: %(default)s)",
    )
    bench.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="where to write the JSON report (default: "
             "BENCH_simulator.json / BENCH_sweeps.json / BENCH_faults.json "
             "per suite)",
    )
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed runs per workload; the best one counts")
    bench.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for the sweeps suite and the "
                            "scale suite's sharded cells")

    decompose = sub.add_parser(
        "decompose",
        help="overhead decomposition of one workflow configuration",
    )
    decompose.add_argument("--algorithm", choices=("matmul", "matmul_fma", "kmeans"),
                           default="kmeans")
    decompose.add_argument("--dataset", default="kmeans_10gb")
    decompose.add_argument("--grid", type=int, default=64)
    decompose.add_argument("--clusters", type=int, default=10)
    decompose.add_argument("--iterations", type=int, default=3)
    decompose.add_argument("--gpu", action="store_true")
    decompose.add_argument("--storage", choices=("local", "shared"),
                           default="shared")
    return parser


def _make_workflow(args) -> object:
    dataset = paper_datasets()[args.dataset]
    if args.algorithm == "matmul":
        return MatmulWorkflow(dataset, grid=args.grid)
    if args.algorithm == "matmul_fma":
        return MatmulFmaWorkflow(dataset, grid=args.grid)
    return KMeansWorkflow(
        dataset,
        grid_rows=args.grid,
        n_clusters=args.clusters,
        iterations=args.iterations,
    )


def _cmd_figures(
    which: str,
    save_dir: str | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    no_cache: bool = False,
    resume: bool = False,
) -> int:
    from repro.core import factors_table
    from repro.core import experiments as exp

    if resume and no_cache:
        print("--resume needs the execution ledger under the cache dir; "
              "drop --no-cache", file=sys.stderr)
        return 2
    # One engine for the whole invocation: cells shared between figures
    # (e.g. Figure 11's base design repeating Figures 7/9a/10) simulate
    # once, and the shard pool's workers stay warm across figures.
    engine = exp.SweepEngine(
        jobs=jobs, cache_dir=cache_dir, cache=not no_cache, resume=resume
    )
    runners = {
        "fig1": lambda: exp.run_fig1(engine=engine),
        "fig6": exp.run_fig6,
        "fig7": lambda: exp.run_fig7(engine=engine),
        "fig8": lambda: exp.run_fig8(engine=engine),
        "fig9a": lambda: exp.run_fig9a(engine=engine),
        "fig9b": lambda: exp.run_fig9b(engine=engine),
        "fig10": lambda: exp.run_fig10(engine=engine),
        "fig11": lambda: exp.run_fig11(engine=engine),
        "fig12": lambda: exp.run_fig12(engine=engine),
        "table1": factors_table,
    }
    targets = _FIGURES if which == "all" else (which,)
    try:
        for target in targets:
            result = runners[target]()
            if target == "fig10":
                print("\n\n".join(panel.render() for panel in result))
            else:
                print(result.render())
            print()
            if save_dir and target != "table1":
                from pathlib import Path

                from repro.core.persistence import save_result

                path = save_result(
                    result if target != "fig10" else list(result),
                    Path(save_dir) / f"{target}.json",
                    metadata={"figure": target},
                )
                print(f"[saved {path}]")
    finally:
        engine.close()
    print(engine.stats.line())
    return 0


def _load_fault_plan(spec: str):
    """Parse ``--faults``: inline JSON or ``@path`` to a JSON file."""
    from repro.faults import FaultPlan

    if spec.startswith("@"):
        with open(spec[1:], encoding="utf-8") as handle:
            return FaultPlan.from_json(handle.read())
    return FaultPlan.from_json(spec)


def _cmd_run(args) -> int:
    from repro.analysis import TraceSanitizerError
    from repro.core.experiments.runners import run_workflow
    from repro.faults import CheckpointPolicy, RetryPolicy
    from repro.runtime import Runtime, RuntimeConfig
    from repro.tracing import (
        data_movement_metrics,
        fault_metrics,
        gantt,
        parallel_task_metrics,
        user_code_metrics,
    )

    workflow = _make_workflow(args)
    storage = StorageKind.LOCAL if args.storage == "local" else StorageKind.SHARED
    policy = SchedulingPolicy(args.policy)
    fault_plan = _load_fault_plan(args.faults) if args.faults else None
    wants_policy = fault_plan is not None or args.recover or args.speculate
    retry_policy = (
        RetryPolicy(
            max_attempts=args.max_attempts,
            recover_lost_blocks=args.recover,
            speculation_factor=args.speculate,
        )
        if wants_policy
        else None
    )
    checkpoint_policy = (
        CheckpointPolicy(every_levels=args.checkpoint_every)
        if args.checkpoint_every is not None
        else None
    )
    config = RuntimeConfig(
        storage=storage,
        scheduling=policy,
        use_gpu=args.gpu,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        checkpoint_policy=checkpoint_policy,
        sanitize=args.sanitize,
    )
    runtime = Runtime(config)
    workflow.build(runtime)
    print(f"DAG: {runtime.graph.describe()}")
    try:
        result = runtime.run()
    except TraceSanitizerError as error:
        print(error.report.render())
        return 2
    if result.sanitizer is not None:
        print(result.sanitizer.render())
    print(f"makespan: {format_seconds(result.makespan)}")
    if fault_plan is not None:
        metrics = fault_metrics(result.trace)
        status = "FAILED" if result.failed else "recovered"
        print(
            f"faults: {status} — {metrics.num_failures} failed attempt(s), "
            f"{metrics.retried_tasks} task(s) retried, goodput "
            f"{metrics.goodput_ratio:.0%}"
        )
        if result.failed:
            shown = ", ".join(f"#{t}" for t in result.failed_task_ids[:10])
            print(f"failed tasks: {shown}")
    recovery = result.recovery_metrics
    if (
        recovery.tasks_resurrected
        or recovery.checkpoint_writes
        or recovery.speculative_launches
    ):
        print(
            f"recovery: {recovery.blocks_lost} block(s) lost, "
            f"{recovery.tasks_resurrected} task(s) resurrected "
            f"({format_seconds(recovery.recompute_seconds)} recompute), "
            f"{recovery.checkpoint_writes} checkpoint write(s), "
            f"speculation {recovery.speculation_wins} win(s) / "
            f"{recovery.speculation_losses} loss(es)"
        )

    table = Table(
        title="Task user code metrics (per-task averages)",
        headers=("task type", "tasks", "serial", "parallel", "comm", "user code"),
    )
    for task_type, metrics in user_code_metrics(result.trace).items():
        table.add_row(
            task_type,
            metrics.num_tasks,
            format_seconds(metrics.serial_fraction),
            format_seconds(metrics.parallel_fraction),
            format_seconds(metrics.cpu_gpu_comm),
            format_seconds(metrics.user_code),
        )
    print(table.render())
    movement = data_movement_metrics(result.trace)
    parallel = parallel_task_metrics(result.trace, set(workflow.parallel_task_types))
    print(
        f"(de-)serialization per core: "
        f"{format_seconds(movement.total_per_core)} over {movement.num_cores} cores"
    )
    print(
        f"parallel-task time (mean over levels): "
        f"{format_seconds(parallel.average_parallel_time)}"
    )
    if args.gantt:
        print()
        print(gantt(result.trace))
    return 1 if result.failed else 0


def _cmd_advise(args) -> int:
    from repro.core.advisor import WorkflowAdvisor

    datasets = paper_datasets()
    dataset = datasets[args.dataset]
    if args.algorithm == "matmul":
        def family(grid: int):
            return MatmulWorkflow(dataset, grid=grid)
    else:
        def family(grid: int):
            return KMeansWorkflow(
                dataset, grid_rows=grid, n_clusters=args.clusters, iterations=3
            )
    grids = tuple(int(g) for g in args.grids.split(","))
    advisor = WorkflowAdvisor()
    recommendation = advisor.recommend(family, grids=grids)
    print(recommendation.render())
    best = recommendation.best
    print(f"\nrecommended: {best.label} "
          f"({format_seconds(best.parallel_task_time)})")
    return 0


def _cmd_observations() -> int:
    from repro.core import experiments as exp
    from repro.core import observations as obs

    print("running the figure subsets behind O1-O6 (takes a few minutes)...")
    kmeans7 = exp.run_fig7_for("kmeans", "kmeans_10gb", (256, 128, 64, 16, 4))
    fig8 = exp.run_fig8(grids=(16, 8, 4, 2))
    fig9a = exp.run_fig9a(clusters=(10, 100, 1000), grids=(256, 64, 16))
    matmul10 = exp.run_fig10_for("matmul", "matmul_8gb", (16, 8, 4, 2, 1))
    kmeans10 = exp.run_fig10_for(
        "kmeans", "kmeans_10gb", (256, 128, 64, 32, 16, 8, 4, 2, 1)
    )
    checks = [
        obs.check_o1(kmeans7),
        obs.check_o2(kmeans7),
        obs.check_o3(fig8),
        obs.check_o4(fig9a),
        obs.check_o5(matmul10),
        obs.check_o5(kmeans10),
        obs.check_o6(kmeans10, matmul10),
    ]
    failed = 0
    for check in checks:
        print(check)
        failed += 0 if check.passed else 1
    return 1 if failed else 0


def _cmd_lint(args) -> int:
    from repro.analysis import analyze_runtime
    from repro.runtime import Runtime, RuntimeConfig

    cluster = cluster_presets()[args.preset](args.nodes)
    workflow = _make_workflow(args)
    runtime = Runtime(RuntimeConfig(cluster=cluster, use_gpu=args.gpu))
    returned = workflow.build(runtime)
    report = analyze_runtime(runtime, returned=returned)
    if args.format == "json":
        print(report.to_json())
    else:
        print(f"linting {workflow.name} on {runtime.graph.describe()}")
        print(report.render())
    return 1 if report.has_errors else 0


def _cmd_devlint(args) -> int:
    from repro.analysis import filter_new, lint_paths, load_baseline, save_baseline

    findings = lint_paths(args.paths)
    if args.write_baseline:
        if not args.baseline:
            print("devlint: --write-baseline requires --baseline FILE",
                  file=sys.stderr)
            return 2
        path = save_baseline(args.baseline, (f.fingerprint() for f in findings))
        print(f"devlint: wrote {len(findings)} fingerprint(s) to {path}")
        return 0
    baseline = load_baseline(args.baseline) if args.baseline else set()
    new, known = filter_new(findings, baseline)
    if args.format == "json":
        from repro.core.persistence import dumps_deterministic

        print(
            dumps_deterministic(
                {
                    "findings": [f.to_dict() for f in new],
                    "baselined": len(known),
                }
            ),
            end="",
        )
    else:
        for finding in new:
            print(finding.render())
        suffix = f" ({len(known)} baselined)" if baseline else ""
        print(f"devlint: {len(new)} new finding(s){suffix}")
    return 1 if new else 0


def _cmd_bench(args) -> int:
    if args.suite == "sweeps":
        from repro.bench import DEFAULT_SWEEPS_OUTPUT, render_sweep_report, run_sweep_bench

        out = args.out or DEFAULT_SWEEPS_OUTPUT
        report = run_sweep_bench(jobs=args.jobs, out_path=out)
        print(render_sweep_report(report))
    elif args.suite == "faults":
        from repro.bench import DEFAULT_FAULTS_OUTPUT, render_fault_report, run_fault_bench

        out = args.out or DEFAULT_FAULTS_OUTPUT
        report = run_fault_bench(out_path=out)
        print(render_fault_report(report))
    elif args.suite == "scale":
        from repro.bench import DEFAULT_SCALE_OUTPUT, render_scale_report, run_scale_bench

        out = args.out or DEFAULT_SCALE_OUTPUT
        report = run_scale_bench(out_path=out, jobs=args.jobs)
        print(render_scale_report(report))
    elif args.suite == "chaos":
        from repro.bench import DEFAULT_CHAOS_OUTPUT, render_chaos_report, run_chaos_bench

        out = args.out or DEFAULT_CHAOS_OUTPUT
        report = run_chaos_bench(out_path=out, jobs=args.jobs)
        print(render_chaos_report(report))
        if not report["bit_identical"]:
            print("[chaos] sharded results diverged from serial", file=sys.stderr)
            return 1
    else:
        from repro.bench import DEFAULT_OUTPUT, render_report, run_bench

        out = args.out or DEFAULT_OUTPUT
        report = run_bench(repeats=args.repeats, out_path=out)
        print(render_report(report))
    print(f"[saved {out}]")
    return 0


def _cmd_info() -> int:
    from repro.perfmodel.calibration import CALIBRATION_NOTES

    spec = minotauro()
    print(f"cluster: {spec.name}")
    print(f"  nodes: {spec.num_nodes}")
    print(f"  CPU: {spec.node.cpu.name}, {spec.node.cpu.cores_per_node} cores/node "
          f"({spec.total_cpu_cores} total)")
    print(f"  GPU: {spec.node.gpu.name}, {spec.node.gpu.devices_per_node}/node "
          f"({spec.total_gpus} total), "
          f"{spec.node.gpu.memory_bytes / 2**30:.0f} GiB each")
    print(f"  interconnect: {spec.node.interconnect.name}")
    print(f"  local disk: {spec.node.local_disk.name}")
    print(f"  shared disk: {spec.shared_disk.name}")
    print(f"  network: {spec.network.name}")
    print("\ncalibration:")
    for key, (value, why) in CALIBRATION_NOTES.items():
        print(f"  {key} = {value:g} — {why}")
    return 0


def _cmd_decompose(args) -> int:
    from repro.runtime import Runtime, RuntimeConfig
    from repro.tracing import decompose_overheads

    workflow = _make_workflow(args)
    storage = StorageKind.LOCAL if args.storage == "local" else StorageKind.SHARED
    runtime = Runtime(RuntimeConfig(storage=storage, use_gpu=args.gpu))
    workflow.build(runtime)
    result = runtime.run()
    breakdown = decompose_overheads(result.trace)
    print(breakdown.render())
    table = Table(
        title="Occupied core-seconds by category",
        headers=("category", "share"),
    )
    for name, share in (
        ("user-code compute", breakdown.compute_share),
        ("data movement ((de-)serialization)", breakdown.movement_share),
        ("CPU-GPU communication", breakdown.comm_share),
        ("scheduling", breakdown.scheduling_share),
        ("idle", breakdown.idle_share),
    ):
        table.add_row(name, f"{share:.1%}")
    print()
    print(table.render())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "figures":
        return _cmd_figures(
            args.which,
            args.save,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            no_cache=args.no_cache,
            resume=args.resume,
        )
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "advise":
        return _cmd_advise(args)
    if args.command == "observations":
        return _cmd_observations()
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "devlint":
        return _cmd_devlint(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "info":
        return _cmd_info()
    if args.command == "decompose":
        return _cmd_decompose(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
