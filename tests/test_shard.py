"""Shard-pool contract tests: determinism, crash isolation, re-entrancy.

The pool's promise is that sharded execution is an *implementation
detail*: a batch fanned out across any number of workers, under any
start method, merges to exactly what a serial run of the same instances
produces.  These tests pin that promise against the golden-trace matrix
(real simulations, recorded digests), then cover the failure contract —
instance exceptions re-raise, a killed worker's instance re-runs exactly
once, a twice-killing instance raises instead of looping — and the
re-entrancy guard that keeps a pool worker from spawning a pool of its
own.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import shard
from repro.core.shard import (
    ShardCrashError,
    ShardItem,
    ShardPool,
    ShardProtocolError,
    ShardTaskError,
    merge_shard_results,
)
from repro.tracing import trace_digest
from tests.golden_matrix import golden_cases

#: Golden-matrix cells the sharded-vs-serial digest tests replay: every
#: wide16 cell (CPU, jitter, all policies, clean and faulted) plus one
#: GPU cell and one faulted GPU-overflow cell, so the workers exercise
#: the same executor paths the recorded digests pin.
_SHARD_KEYS = (
    "wide16|generation_order|clean",
    "wide16|generation_order|faults",
    "wide16|data_locality|clean",
    "wide16|data_locality|faults",
    "wide16|lifo|clean",
    "wide16|lifo|faults",
    "matmul4|generation_order|clean",
    "kmeans40|lifo|faults",
)


def _digest_golden_cell(key: str) -> str:
    """Run one golden-matrix cell by key and digest its trace.

    Module-level so it pickles under the ``spawn`` start method: the
    worker re-imports this module and rebuilds the case from its key
    instead of shipping a closure across the process boundary.
    """
    (case,) = [c for c in golden_cases() if c.key == key]
    result = case.run()
    return trace_digest(result.trace, result.failed_task_ids)


@pytest.fixture(scope="module")
def serial_digests() -> dict[str, str]:
    return {key: _digest_golden_cell(key) for key in _SHARD_KEYS}


class TestShardedDeterminism:
    @pytest.mark.parametrize(
        "start_method,workers",
        [("fork", 2), ("fork", 4), ("spawn", 2)],
    )
    def test_sharded_matches_serial_golden_digests(
        self, serial_digests, start_method, workers
    ):
        """Any worker count and start method reproduces the serial run."""
        with ShardPool(workers=workers, start_method=start_method) as pool:
            merged = pool.run(
                [
                    ShardItem(instance_id=key, fn=_digest_golden_cell, args=(key,))
                    for key in _SHARD_KEYS
                ]
            )
        assert merged == serial_digests
        assert list(merged) == sorted(_SHARD_KEYS)

    def test_pool_reusable_across_batches(self, serial_digests):
        """Workers persist across run() calls; later batches still merge
        correctly (the warm-up-once economics the pool exists for)."""
        keys = list(_SHARD_KEYS[:4])
        with ShardPool(workers=2, start_method="fork") as pool:
            first = pool.run(
                [
                    ShardItem(instance_id=k, fn=_digest_golden_cell, args=(k,))
                    for k in keys[:2]
                ]
            )
            second = pool.run(
                [
                    ShardItem(instance_id=k, fn=_digest_golden_cell, args=(k,))
                    for k in keys[2:]
                ]
            )
        combined = {**first, **second}
        assert combined == {k: serial_digests[k] for k in keys}


class TestMergeOrderInvariance:
    @given(
        results=st.dictionaries(
            st.integers(min_value=0, max_value=10_000),
            st.text(max_size=8),
            max_size=32,
        ),
        cuts=st.lists(st.integers(min_value=0, max_value=32), max_size=4),
        order_seed=st.randoms(use_true_random=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_any_partition_merges_identically(self, results, cuts, order_seed):
        """The merged map is independent of how instances were sharded
        and of shard arrival order."""
        ids = list(results)
        order_seed.shuffle(ids)
        bounds = sorted({min(c, len(ids)) for c in cuts} | {0, len(ids)})
        shards = [
            {i: results[i] for i in ids[lo:hi]}
            for lo, hi in zip(bounds, bounds[1:])
        ]
        order_seed.shuffle(shards)
        merged = merge_shard_results(shards)
        assert merged == results
        assert list(merged) == sorted(results)

    def test_duplicate_ids_across_shards_raise(self):
        with pytest.raises(ValueError, match="more than one shard"):
            merge_shard_results([{1: "a"}, {1: "b"}])

    def test_duplicate_diagnostics_name_the_shard_and_the_stakes(self):
        """The error is a ShardProtocolError (a ValueError, so existing
        handlers keep working) and says whether the colliding results
        actually disagree — the case where silent overwrite would have
        corrupted merged artifacts."""
        with pytest.raises(ShardProtocolError, match="shard 1.*a DIFFERENT"):
            merge_shard_results([{1: "a"}, {1: "b"}])
        with pytest.raises(ShardProtocolError, match="shard 2.*an identical"):
            merge_shard_results([{1: "a"}, {2: "b"}, {1: "a"}])


# ----------------------------------------------------- crash isolation

def _crash_once(marker: str) -> str:
    """Die hard on the first invocation, succeed on the second.

    The marker file counts invocations across the kill/respawn cycle:
    one byte is appended per call, so the parent can assert the instance
    ran exactly twice (once killed, once to completion).
    """
    with open(marker, "a") as handle:
        handle.write("x")
    if os.path.getsize(marker) == 1:
        os._exit(42)
    return "survived"


def _always_crash() -> None:
    os._exit(7)


def _raise_value_error(payload: str) -> None:
    raise ValueError(payload)


def _identity(value: int) -> int:
    return value


class TestCrashIsolation:
    def test_killed_worker_instance_reruns_exactly_once(self):
        with tempfile.TemporaryDirectory() as scratch:
            marker = str(Path(scratch) / "invocations")
            with ShardPool(workers=2, start_method="fork") as pool:
                merged = pool.run(
                    [
                        ShardItem(instance_id=0, fn=_identity, args=(10,)),
                        ShardItem(instance_id=1, fn=_crash_once, args=(marker,)),
                        ShardItem(instance_id=2, fn=_identity, args=(20,)),
                    ]
                )
            assert merged == {0: 10, 1: "survived", 2: 20}
            assert Path(marker).stat().st_size == 2

    def test_twice_killing_instance_raises_instead_of_looping(self):
        with ShardPool(workers=2, start_method="fork") as pool:
            with pytest.raises(ShardCrashError, match="killed its worker"):
                pool.run(
                    [
                        ShardItem(instance_id=0, fn=_identity, args=(1,)),
                        ShardItem(instance_id=1, fn=_always_crash),
                    ]
                )

    def test_instance_exception_reraises_with_remote_context(self):
        with ShardPool(workers=2, start_method="fork") as pool:
            with pytest.raises(ShardTaskError, match="ValueError") as excinfo:
                pool.run(
                    [
                        ShardItem(instance_id=0, fn=_identity, args=(1,)),
                        ShardItem(
                            instance_id=1, fn=_raise_value_error, args=("boom",)
                        ),
                    ]
                )
        assert excinfo.value.instance_id == 1
        assert excinfo.value.kind == "ValueError"
        assert "boom" in excinfo.value.remote_message

    def test_exception_does_not_kill_the_worker(self):
        """A Python-level error is a result, not a crash: the same pool
        keeps serving instances afterwards."""
        with ShardPool(workers=1, start_method="fork") as pool:
            with pytest.raises(ShardTaskError):
                pool.run([ShardItem(instance_id=0, fn=_raise_value_error, args=("x",))])
            assert pool.run(
                [ShardItem(instance_id=0, fn=_identity, args=(5,))]
            ) == {0: 5}


# ---------------------------------------------------- pool API contract

class TestPoolContract:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            ShardPool(workers=0)

    def test_duplicate_instance_ids_rejected(self):
        with ShardPool(workers=1, start_method="fork") as pool:
            with pytest.raises(ValueError, match="duplicate instance ids"):
                pool.run(
                    [
                        ShardItem(instance_id=1, fn=_identity, args=(1,)),
                        ShardItem(instance_id=1, fn=_identity, args=(2,)),
                    ]
                )

    def test_empty_batch_is_a_noop(self):
        with ShardPool(workers=2) as pool:
            assert pool.run([]) == {}

    def test_closed_pool_refuses_work(self):
        pool = ShardPool(workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.run([ShardItem(instance_id=0, fn=_identity, args=(1,))])

    def test_map_aligns_with_input_order(self):
        with ShardPool(workers=2, start_method="fork") as pool:
            assert pool.map(_identity, [3, 1, 2]) == [3, 1, 2]

    def test_duplicate_batch_error_is_a_protocol_error(self):
        with ShardPool(workers=1, start_method="fork") as pool:
            with pytest.raises(ShardProtocolError):
                pool.run(
                    [
                        ShardItem(instance_id=1, fn=_identity, args=(1,)),
                        ShardItem(instance_id=1, fn=_identity, args=(2,)),
                    ]
                )

    def test_close_escalates_past_a_wedged_worker(self):
        """A worker stuck in a 1-hour task cannot hang close(): after
        shutdown_grace the pool terminates, then kills, then joins it.
        The wedge is injected through the worker's own task queue so the
        public API never has to expose an 'ignore the sentinel' mode."""
        import time

        pool = ShardPool(workers=1, start_method="fork", shutdown_grace=0.2)
        try:
            assert pool.run(
                [ShardItem(instance_id=0, fn=_identity, args=(1,))]
            ) == {0: 1}
            (worker,) = pool._pool.values()
            worker.task_queue.put((1, 1, time.sleep, (3600.0,), {}))
            time.sleep(0.3)  # let the worker pick the sleep up
            started = time.perf_counter()
            pool.close()
            elapsed = time.perf_counter() - started
            assert not worker.process.is_alive()
            assert elapsed < 5.0, f"close() took {elapsed:.1f}s against a wedge"
        finally:
            pool.close()


# --------------------------------------------------- re-entrancy guard

class TestReentrancyGuard:
    def test_in_worker_reflects_module_flag(self, monkeypatch):
        assert shard.in_worker() is False
        monkeypatch.setattr(shard, "_IN_WORKER", True)
        assert shard.in_worker() is True

    def test_engine_degrades_to_serial_inside_a_worker(self, monkeypatch):
        """A pool worker running the sweep engine must not spawn a nested
        pool: jobs > 1 silently degrades to in-process execution.  This
        is the guard that prevents fork bombs when a sharded figure run
        executes cells that themselves use the engine."""
        from repro.core.experiments.engine import SweepEngine, cells_product

        monkeypatch.setattr(shard, "_IN_WORKER", True)
        cells = cells_product("matmul", (2, 4), dataset_key="matmul_128mb")
        with SweepEngine(jobs=4, cache=False) as engine:
            results = engine.run_cells(cells)
            assert engine._pool is None, (
                "engine built a nested ShardPool inside a worker"
            )
        assert len(results) == len(cells)
        assert all(r.makespan > 0 for r in results)
