"""Crash-consistent execution ledger: an append-only JSONL journal.

The sweep cache (:mod:`repro.core.experiments.cache`) memoises *what a
cell computed*; the ledger records *what an execution did* — every item
state transition of one logical run, durable enough to survive a SIGKILL
mid-sweep.  One line per event:

``PENDING → DISPATCHED → DONE | FAILED | QUARANTINED``

``DISPATCHED`` repeats per attempt (carrying the worker id and attempt
number), ``DONE`` carries the result record and its wall-clock duration,
so a resumed run (``repro figures --resume``) can replay the journal,
re-hydrate every finished item *from the ledger alone* — no cache
required — and re-run only what was in flight or failed when the process
died.

Crash consistency comes from the write discipline, not from locks: each
event is a single ``os.write`` of one complete line to an ``O_APPEND``
descriptor followed by ``fsync``, so after any kill the file is a valid
journal plus at most one torn final line, which :func:`replay_ledger`
drops.  Torn or foreign bytes *before* the final line mean real
corruption (two uncoordinated writers, disk damage) and raise
:class:`LedgerError` instead of being silently skipped.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

#: Journal format version, stamped on every session-open marker.
SCHEMA = "repro-ledger/1"

#: Item states, in lifecycle order.
PENDING = "PENDING"
DISPATCHED = "DISPATCHED"
DONE = "DONE"
FAILED = "FAILED"
QUARANTINED = "QUARANTINED"

#: Session markers (no item attached): OPEN starts a fresh session,
#: RESUME starts a session that replayed the journal first.
OPEN = "OPEN"
RESUME = "RESUME"

STATES = frozenset({PENDING, DISPATCHED, DONE, FAILED, QUARANTINED})
MARKERS = frozenset({OPEN, RESUME})
#: States that settle an item (no further transitions expected).
TERMINAL = frozenset({DONE, FAILED, QUARANTINED})


class LedgerError(RuntimeError):
    """The journal is corrupt beyond a torn final line."""


class ExecutionLedger:
    """Append-only event writer over one journal file.

    Single-writer by design: the pool parent (or the serial engine loop)
    is the only appender, so event order in the file is authoritative
    and no locking is needed.  ``fsync=False`` trades the per-event
    fsync for speed when durability only needs to beat a clean exit
    (tests); leave it on for anything a SIGKILL may interrupt.
    """

    def __init__(self, path: str | Path, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._fd: int | None = None
        self._seq = 0

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "ExecutionLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def _descriptor(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self._fd

    # -------------------------------------------------------------- writing
    def append(self, state: str, item: str | None = None, **fields: Any) -> dict:
        """Append one event; returns the written entry.

        ``state`` is one of :data:`STATES` (``item`` required) or
        :data:`MARKERS` (``item`` forbidden).  Extra ``fields`` (attempt,
        worker, duration, record, error, ...) are stored verbatim;
        ``None`` values are dropped.
        """
        if state in STATES:
            if item is None:
                raise ValueError(f"{state} events need an item")
        elif state in MARKERS:
            if item is not None:
                raise ValueError(f"{state} is a session marker, not an item event")
        else:
            raise ValueError(f"unknown ledger state {state!r}")
        entry: dict[str, Any] = {"seq": self._seq, "state": state}
        if item is not None:
            entry["item"] = item
        if state in MARKERS:
            entry["schema"] = SCHEMA
        entry.update(
            {key: value for key, value in fields.items() if value is not None}
        )
        line = (
            json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        fd = self._descriptor()
        os.write(fd, line)
        if self.fsync:
            os.fsync(fd)
        self._seq += 1
        return entry

    def open_session(self, resumed: bool = False, **fields: Any) -> dict:
        """Append the session marker that starts one engine invocation."""
        return self.append(RESUME if resumed else OPEN, **fields)


# --------------------------------------------------------------- replay


@dataclass
class ItemState:
    """Where one item stood when the journal ended."""

    state: str
    attempts: int = 0
    worker: int | None = None
    duration: float | None = None
    #: The DONE event's result record, or the FAILED/QUARANTINED error.
    record: dict | None = None
    error: Any = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL


@dataclass
class LedgerState:
    """The replayed journal: per-item latest state plus file health."""

    items: dict[str, ItemState] = field(default_factory=dict)
    events: int = 0
    sessions: int = 0
    #: The final line was torn (interrupted write) and was dropped.
    torn: bool = False

    def by_state(self, state: str) -> list[str]:
        """Item ids currently in ``state``, sorted."""
        return sorted(k for k, v in self.items.items() if v.state == state)

    @property
    def done(self) -> list[str]:
        return self.by_state(DONE)

    def done_records(self) -> dict[str, dict]:
        """``{item: result record}`` of every finished item that has one."""
        return {
            key: state.record
            for key, state in sorted(self.items.items())
            if state.state == DONE and state.record is not None
        }

    @property
    def unfinished(self) -> list[str]:
        """Items seen but not settled — the resume work list."""
        return sorted(
            k for k, v in self.items.items() if v.state not in TERMINAL
        )


def iter_events(path: str | Path) -> Iterator[dict]:
    """Yield journal events in file order, dropping a torn final line.

    A line that fails to parse is tolerated only in final position
    (the signature of a write cut short by a kill); anywhere else it
    raises :class:`LedgerError`.
    """
    try:
        raw = Path(path).read_bytes()
    except FileNotFoundError:
        return
    lines = raw.split(b"\n")
    # A well-formed journal ends with a newline, so the final split
    # element is empty; anything else is a torn tail.
    last = len(lines) - 1
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except ValueError as error:
            if index == last:
                return  # torn tail — the interrupted final append
            raise LedgerError(
                f"{path}: corrupt journal line {index + 1}: {error}"
            ) from error
        if not isinstance(entry, dict) or "state" not in entry:
            raise LedgerError(f"{path}: journal line {index + 1} is not an event")
        yield entry


def replay_ledger(path: str | Path) -> LedgerState:
    """Fold the journal into per-item latest states.

    A missing file replays to an empty state (nothing to resume).  The
    torn-tail flag is set when the raw file does not end in a newline,
    whether or not the tail parsed.
    """
    state = LedgerState()
    try:
        state.torn = not Path(path).read_bytes().endswith(b"\n")
    except FileNotFoundError:
        return state
    for entry in iter_events(path):
        state.events += 1
        kind = entry["state"]
        if kind in MARKERS:
            state.sessions += 1
            continue
        item = str(entry["item"])
        current = state.items.get(item)
        if current is None:
            current = state.items[item] = ItemState(state=kind)
        current.state = kind
        if kind == DISPATCHED:
            current.attempts = int(entry.get("attempt", current.attempts + 1))
            current.worker = entry.get("worker", current.worker)
        elif kind == DONE:
            current.record = entry.get("record")
            current.duration = entry.get("duration", current.duration)
            current.worker = entry.get("worker", current.worker)
        elif kind in (FAILED, QUARANTINED):
            current.error = entry.get("error")
    return state
