"""Unit tests for the scheduling policies."""

from repro.runtime import DataRef, SchedulingPolicy, Task
from repro.runtime.scheduler import (
    DataLocalityScheduler,
    GenerationOrderScheduler,
    make_scheduler,
)


class FakeCluster:
    """A ClusterView stub with explicit per-node availability."""

    def __init__(self, free_cores, free_gpus=None):
        self.free_cores = free_cores
        self.free_gpus = free_gpus or [1] * len(free_cores)

    def num_nodes(self):
        return len(self.free_cores)

    def has_free_slot(self, node, needs_gpu, ram_bytes=0):
        if self.free_cores[node] < 1:
            return False
        if needs_gpu and self.free_gpus[node] < 1:
            return False
        return True


def _task(task_id, input_homes=(), parallel=False):
    from repro.perfmodel import TaskCost

    inputs = tuple(
        DataRef(size_bytes=100, home_node=home) for home in input_homes
    )
    cost = TaskCost(
        serial_flops=1.0,
        parallel_flops=100.0 if parallel else 0.0,
        parallel_items=10.0 if parallel else 0.0,
        arithmetic_intensity=1.0,
        input_bytes=100,
        output_bytes=10,
        host_device_bytes=0,
        gpu_memory_bytes=0,
    )
    return Task(
        task_id=task_id,
        name=f"t{task_id}",
        inputs=inputs,
        outputs=(DataRef(size_bytes=10),),
        cost=cost,
    )



def _never_gpu(task):
    return False


def _eligible_gpu(task):
    return task.gpu_eligible


class TestGenerationOrder:
    def test_picks_head_of_queue(self):
        scheduler = GenerationOrderScheduler()
        ready = [_task(3), _task(7)]
        choice = scheduler.select(ready, FakeCluster([1, 1]), _never_gpu)
        assert choice.task.task_id == 3

    def test_round_robin_spreads_nodes(self):
        scheduler = GenerationOrderScheduler()
        cluster = FakeCluster([2, 2, 2])
        nodes = [
            scheduler.select([_task(i)], cluster, _never_gpu).node
            for i in range(3)
        ]
        assert nodes == [0, 1, 2]

    def test_skips_full_nodes(self):
        scheduler = GenerationOrderScheduler()
        cluster = FakeCluster([0, 0, 1])
        choice = scheduler.select([_task(0)], cluster, _never_gpu)
        assert choice.node == 2

    def test_returns_none_when_cluster_full(self):
        scheduler = GenerationOrderScheduler()
        assert scheduler.select([_task(0)], FakeCluster([0, 0]), _never_gpu) is None

    def test_returns_none_when_queue_empty(self):
        scheduler = GenerationOrderScheduler()
        assert scheduler.select([], FakeCluster([1]), _never_gpu) is None

    def test_gpu_requirement_respected(self):
        scheduler = GenerationOrderScheduler()
        cluster = FakeCluster([1, 1], free_gpus=[0, 1])
        choice = scheduler.select([_task(0, parallel=True)], cluster, _eligible_gpu)
        assert choice.node == 1

    def test_serial_task_needs_no_gpu_even_in_gpu_mode(self):
        scheduler = GenerationOrderScheduler()
        cluster = FakeCluster([1], free_gpus=[0])
        choice = scheduler.select([_task(0, parallel=False)], cluster, _eligible_gpu)
        assert choice is not None


class TestDataLocality:
    def test_prefers_owner_node(self):
        scheduler = DataLocalityScheduler()
        cluster = FakeCluster([1, 1, 1])
        choice = scheduler.select([_task(0, input_homes=[2])], cluster, _never_gpu)
        assert choice.node == 2

    def test_majority_bytes_win(self):
        scheduler = DataLocalityScheduler()
        cluster = FakeCluster([1, 1])
        task = _task(0, input_homes=[0, 1, 1])
        choice = scheduler.select([task], cluster, _never_gpu)
        assert choice.node == 1

    def test_falls_back_when_owner_busy(self):
        scheduler = DataLocalityScheduler()
        cluster = FakeCluster([1, 0])
        choice = scheduler.select([_task(0, input_homes=[1])], cluster, _never_gpu)
        assert choice.node == 0

    def test_scans_past_blocked_tasks(self):
        scheduler = DataLocalityScheduler()
        cluster = FakeCluster([1], free_gpus=[0])
        blocked = _task(0, parallel=True)
        runnable = _task(1, input_homes=[0], parallel=False)
        choice = scheduler.select([blocked, runnable], cluster, _eligible_gpu)
        assert choice.task.task_id == 1

    def test_returns_none_when_cluster_full(self):
        scheduler = DataLocalityScheduler()
        assert scheduler.select([_task(0)], FakeCluster([0]), _never_gpu) is None


class TestFactory:
    def test_make_scheduler(self):
        assert isinstance(
            make_scheduler(SchedulingPolicy.GENERATION_ORDER),
            GenerationOrderScheduler,
        )
        assert isinstance(
            make_scheduler(SchedulingPolicy.DATA_LOCALITY), DataLocalityScheduler
        )

    def test_policy_labels(self):
        assert SchedulingPolicy.GENERATION_ORDER.label == "task generation order"
        assert SchedulingPolicy.DATA_LOCALITY.label == "data locality"


class TestLifo:
    def test_picks_tail_of_queue(self):
        from repro.runtime.scheduler import LifoScheduler

        scheduler = LifoScheduler()
        ready = [_task(3), _task(7)]
        choice = scheduler.select(ready, FakeCluster([1, 1]), _never_gpu)
        assert choice.task.task_id == 7

    def test_round_robin_nodes(self):
        from repro.runtime.scheduler import LifoScheduler

        scheduler = LifoScheduler()
        cluster = FakeCluster([2, 2])
        nodes = [
            scheduler.select([_task(i)], cluster, _never_gpu).node
            for i in range(2)
        ]
        assert nodes == [0, 1]

    def test_returns_none_when_full(self):
        from repro.runtime.scheduler import LifoScheduler

        scheduler = LifoScheduler()
        assert scheduler.select([_task(0)], FakeCluster([0]), _never_gpu) is None

    def test_factory_and_label(self):
        from repro.runtime.scheduler import LifoScheduler

        assert isinstance(make_scheduler(SchedulingPolicy.LIFO), LifoScheduler)
        assert SchedulingPolicy.LIFO.label == "LIFO"

    def test_end_to_end_lifo_run(self):
        from repro.perfmodel import TaskCost
        from repro.runtime import Runtime, RuntimeConfig

        rt = Runtime(RuntimeConfig(scheduling=SchedulingPolicy.LIFO))
        cost = TaskCost(
            serial_flops=1e9, parallel_flops=0, parallel_items=0,
            arithmetic_intensity=0, input_bytes=10**6, output_bytes=10**5,
            host_device_bytes=0, gpu_memory_bytes=0,
        )
        for i in range(20):
            ref = rt.register_input(10**6, name=f"in{i}")
            rt.submit(name="w", inputs=[ref], cost=cost)
        assert len(rt.run().trace.tasks) == 20
