"""Tests for heterogeneous GPU-overflow execution."""

import pytest

from repro.algorithms import KMeansWorkflow, MatmulWorkflow
from repro.data import paper_datasets
from repro.hardware import StorageKind
from repro.runtime import Runtime, RuntimeConfig


@pytest.fixture(scope="module")
def datasets():
    return paper_datasets()


def _kmeans_run(datasets, n_clusters, **config):
    rt = Runtime(RuntimeConfig(storage=StorageKind.LOCAL, **config))
    KMeansWorkflow(
        datasets["kmeans_10gb"], grid_rows=128, n_clusters=n_clusters,
        iterations=3,
    ).build(rt)
    return rt.run()


class TestOverflowDecisions:
    def test_overflow_splits_work_when_cpu_competitive(self, datasets):
        result = _kmeans_run(datasets, 10, use_gpu=True, gpu_overflow_to_cpu=True)
        gpu_tasks = sum(1 for t in result.trace.tasks if t.used_gpu)
        cpu_tasks = sum(
            1
            for t in result.trace.tasks
            if not t.used_gpu and t.task_type == "partial_sum"
        )
        assert gpu_tasks > 0
        assert cpu_tasks > 0

    def test_no_overflow_when_gpu_clearly_wins(self, datasets):
        # K=1000: waiting for a device still beats a 5x-slower core.
        result = _kmeans_run(datasets, 1000, use_gpu=True,
                             gpu_overflow_to_cpu=True)
        partial_sums = [
            t for t in result.trace.tasks if t.task_type == "partial_sum"
        ]
        assert all(t.used_gpu for t in partial_sums)

    def test_overflow_never_catastrophic(self, datasets):
        for n_clusters in (10, 100, 1000):
            pure = _kmeans_run(datasets, n_clusters, use_gpu=True).makespan
            overflow = _kmeans_run(
                datasets, n_clusters, use_gpu=True, gpu_overflow_to_cpu=True
            ).makespan
            assert overflow <= pure * 1.15

    def test_overflow_beats_pure_modes_in_sweet_spot(self, datasets):
        cpu = _kmeans_run(datasets, 10, use_gpu=False).makespan
        gpu = _kmeans_run(datasets, 10, use_gpu=True).makespan
        overflow = _kmeans_run(
            datasets, 10, use_gpu=True, gpu_overflow_to_cpu=True
        ).makespan
        assert overflow < min(cpu, gpu)

    def test_disabled_without_gpu_mode(self, datasets):
        plain = _kmeans_run(datasets, 10, use_gpu=False).makespan
        flagged = _kmeans_run(
            datasets, 10, use_gpu=False, gpu_overflow_to_cpu=True
        ).makespan
        assert plain == flagged


class TestOverflowRescuesOom:
    def test_unfittable_task_runs_on_cpu(self, datasets):
        # Matmul 1x1 OOMs the device; with overflow on, it runs on a core
        # instead of failing up front.
        rt = Runtime(RuntimeConfig(use_gpu=True, gpu_overflow_to_cpu=True))
        MatmulWorkflow(datasets["matmul_8gb"], grid=1).build(rt)
        result = rt.run()
        assert len(result.trace.tasks) == 1
        assert not result.trace.tasks[0].used_gpu

    def test_fitting_tasks_still_use_gpu(self, datasets):
        rt = Runtime(RuntimeConfig(use_gpu=True, gpu_overflow_to_cpu=True))
        MatmulWorkflow(datasets["matmul_8gb"], grid=4).build(rt)
        result = rt.run()
        assert any(t.used_gpu for t in result.trace.tasks)
