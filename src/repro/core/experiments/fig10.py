"""Figure 10 — storage architecture x scheduling policy (§5.3).

Parallel-task execution time across the four combinations of storage
(local vs shared disk) and scheduler (task generation order vs data
locality), for Matmul (8 GB) and K-means (10 GB, 10 clusters).  The
expected shapes: local disk beats shared disk; the scheduling policy
barely matters on local disk (O5) but shows for the cheap K-means tasks
on shared disk (O6); time rises with block size as task parallelism is
lost, and drops at the maximum block size where a single task runs with
no distribution overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms import KMeansWorkflow, MatmulWorkflow
from repro.core.experiments.engine import CellSpec, SweepEngine
from repro.core.experiments.runners import RunMetrics
from repro.core.report import Table, format_seconds
from repro.data import paper_datasets
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy

MATMUL_GRIDS = (16, 8, 4, 2, 1)
KMEANS_GRIDS = (256, 128, 64, 32, 16, 8, 4, 2, 1)

_COMBOS: tuple[tuple[StorageKind, SchedulingPolicy], ...] = (
    (StorageKind.LOCAL, SchedulingPolicy.GENERATION_ORDER),
    (StorageKind.LOCAL, SchedulingPolicy.DATA_LOCALITY),
    (StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER),
    (StorageKind.SHARED, SchedulingPolicy.DATA_LOCALITY),
)


@dataclass
class Fig10Cell:
    """One (storage, policy, grid, processor) measurement."""

    storage: StorageKind
    scheduling: SchedulingPolicy
    grid: int
    block_mb: float
    use_gpu: bool
    metrics: RunMetrics

    @property
    def parallel_task_time(self) -> float | None:
        """The bar height of Figure 10 ('-' on OOM)."""
        return self.metrics.parallel_task_time if self.metrics.ok else None


@dataclass
class Fig10Result:
    """One Figure 10 panel (one algorithm)."""

    algorithm: str
    dataset: str
    cells: list[Fig10Cell] = field(default_factory=list)

    def series(
        self,
        storage: StorageKind,
        scheduling: SchedulingPolicy,
        use_gpu: bool,
    ) -> dict[int, float | None]:
        """grid -> parallel-task time for one combination."""
        return {
            c.grid: c.parallel_task_time
            for c in self.cells
            if c.storage is storage
            and c.scheduling is scheduling
            and c.use_gpu is use_gpu
        }

    def chart(
        self, storage: StorageKind, scheduling: SchedulingPolicy
    ) -> str:
        """One combination's CPU/GPU bars vs block size."""
        from repro.core.plotting import bar_chart

        bars: dict[str, float | None] = {}
        grids = sorted({c.grid for c in self.cells}, reverse=True)
        cpu = self.series(storage, scheduling, False)
        gpu = self.series(storage, scheduling, True)
        for grid in grids:
            block_mb = next(c.block_mb for c in self.cells if c.grid == grid)
            bars[f"{block_mb:.0f}MB CPU"] = cpu.get(grid)
            bars[f"{block_mb:.0f}MB GPU"] = gpu.get(grid)
        return bar_chart(
            bars,
            title=(
                f"Figure 10 shape: {self.algorithm}, {storage.value}, "
                f"{scheduling.value} (parallel-task seconds)"
            ),
        )

    def render(self) -> str:
        """The panel as a table (one row per grid, one column per combo)."""
        headers = ["block MB", "grid"]
        for storage, policy in _COMBOS:
            prefix = "local" if storage is StorageKind.LOCAL else "shared"
            suffix = "gen" if policy is SchedulingPolicy.GENERATION_ORDER else "loc"
            headers += [f"{prefix}/{suffix} CPU", f"{prefix}/{suffix} GPU"]
        table = Table(
            title=(
                f"Figure 10: storage x scheduling, {self.algorithm} "
                f"({self.dataset}), parallel-task average time"
            ),
            headers=tuple(headers),
        )
        grids = sorted({c.grid for c in self.cells}, reverse=True)
        by_key = {
            (c.storage, c.scheduling, c.grid, c.use_gpu): c for c in self.cells
        }
        for grid in grids:
            block_mb = next(c.block_mb for c in self.cells if c.grid == grid)
            row: list[str] = [f"{block_mb:.0f}", str(grid)]
            for storage, policy in _COMBOS:
                for use_gpu in (False, True):
                    cell = by_key.get((storage, policy, grid, use_gpu))
                    value = cell.parallel_task_time if cell else None
                    row.append(format_seconds(value) if value is not None else "OOM")
            table.add_row(*row)
        return table.render()


def run_fig10_for(
    algorithm: str,
    dataset_key: str,
    grids: tuple[int, ...],
    combos: tuple[tuple[StorageKind, SchedulingPolicy], ...] = _COMBOS,
    engine: SweepEngine | None = None,
) -> Fig10Result:
    """Sweep one algorithm over the storage x scheduler combinations."""
    engine = engine if engine is not None else SweepEngine.serial()
    dataset = paper_datasets()[dataset_key]

    def make(grid: int):
        if algorithm == "matmul":
            return MatmulWorkflow(dataset, grid=grid)
        return KMeansWorkflow(dataset, grid_rows=grid, n_clusters=10, iterations=3)

    # Blocking metadata once per grid; executions rebuild from the spec.
    block_mbs = {grid: make(grid).block_mb for grid in grids}
    result = Fig10Result(algorithm=algorithm, dataset=dataset_key)
    cells = []
    meta = []
    for storage, policy in combos:
        for grid in grids:
            for use_gpu in (False, True):
                cells.append(
                    CellSpec(
                        algorithm=algorithm,
                        grid=grid,
                        dataset_key=dataset_key,
                        n_clusters=10 if algorithm == "kmeans" else 0,
                        use_gpu=use_gpu,
                        storage=storage,
                        scheduling=policy,
                    )
                )
                meta.append((storage, policy, grid, use_gpu))
    results = engine.run_cells(cells)
    for (storage, policy, grid, use_gpu), metrics in zip(meta, results):
        result.cells.append(
            Fig10Cell(
                storage=storage,
                scheduling=policy,
                grid=grid,
                block_mb=block_mbs[grid],
                use_gpu=use_gpu,
                metrics=metrics,
            )
        )
    return result


def run_fig10(
    engine: SweepEngine | None = None,
) -> tuple[Fig10Result, Fig10Result]:
    """Both Figure 10 panels: (Matmul 8 GB, K-means 10 GB)."""
    engine = engine if engine is not None else SweepEngine.serial()
    return (
        run_fig10_for("matmul", "matmul_8gb", MATMUL_GRIDS, engine=engine),
        run_fig10_for("kmeans", "kmeans_10gb", KMEANS_GRIDS, engine=engine),
    )
